// Package experiments reproduces the paper's evaluation: one function per
// figure (Figs. 10–17) plus the layout ablation, each returning a typed
// table of paper-comparable numbers. The DESIGN.md experiment index maps
// each figure to these entry points.
package experiments

import (
	"context"
	"fmt"
	"time"

	"mdacache/internal/compiler"
	"mdacache/internal/core"
	"mdacache/internal/mem"
	"mdacache/internal/workloads"
)

// RunSpec describes one simulation: benchmark × design × configuration.
type RunSpec struct {
	Bench  string
	N      int // matrix dimension (htap table width derives from it)
	Design core.Design

	// Cores selects how many trace-driven CPUs share the hierarchy (private
	// L1s over a coherent shared L2/LLC). 0 and 1 both build the single-CPU
	// machine; above 1 the compiled trace is sharded round-robin in chunks
	// across the cores — a throughput approximation that keeps each core's
	// chunk order but not cross-core program order (the hierarchy stays
	// functionally coherent regardless).
	Cores int

	// LLCBytes sizes the L3 (or, with TwoLevel, the L2 that acts as LLC).
	LLCBytes int
	// TwoLevel drops the L3, making L2 the LLC (Fig. 13's cache-resident
	// configuration).
	TwoLevel bool

	// Scale divides cache capacities by Scale² — pair it with N divided by
	// Scale to preserve the paper's working-set/capacity ratios. 1 = paper
	// scale. LLCBytes is given at paper scale and scaled internally.
	Scale int

	FastMem   bool   // Fig. 17: 1.6× faster main memory
	SlowWrite uint64 // Fig. 16: extra 2P2L array-write cycles

	// LayoutOverride forces a memory layout regardless of the design's
	// logical dimensionality (the §IV-C Design-0 layout-mismatch ablation).
	LayoutOverride compiler.Layout

	// TileSize, when non-zero, applies iteration-space tiling with the
	// given block size to every tileable loop of the kernel — the §X
	// hardware-software collaborative tiling extension.
	TileSize int

	// PredictOrient enables the §IV-C dynamic orientation predictor in the
	// L1 (1P2L designs).
	PredictOrient bool

	// Tech selects the main-memory crosspoint technology preset: "stt"
	// (default), "reram" or "pcm" (§II: the approach extends to any
	// crosspoint technology).
	Tech string

	// Repl selects the cache replacement policy at every level (the paper
	// uses LRU; Random and SRRIP are ablations).
	Repl core.ReplPolicy

	// SubBuffers overrides the number of open-line sub-buffers per bank per
	// orientation (the §IX-B Gulur-style multiple sub-row buffers; 0 keeps
	// the default single buffer).
	SubBuffers int

	// OccupancyInterval samples Fig. 15 occupancy every N cycles (0 = off).
	OccupancyInterval uint64

	// MaxCycles aborts the run with sim.ErrCycleLimit once the simulated
	// clock passes this budget (0 = unlimited).
	MaxCycles uint64

	// Timeout bounds the wall-clock time of the run; expiry aborts it with
	// sim.ErrTimeout (0 = unlimited).
	Timeout time.Duration

	// WriteFailProb and FaultSeed configure NVM write-fault injection in
	// main memory (see mem.Params). 0 probability keeps the fault path
	// entirely disabled.
	WriteFailProb float64
	FaultSeed     uint64

	// Workload selects a request-driven streaming workload instead of a
	// compiled kernel: "" (default) compiles and runs Bench; "kv" or "htap"
	// generate seeded per-core client request streams over the htapTable(N)
	// layout (see workloads.RequestStreams) — O(1) memory in Ops, each
	// simulated client pinned to one core, no trace sharding involved.
	Workload string

	// Ops is the total request count across all cores (request workloads
	// only; must be >= 1 when Workload is set).
	Ops int64

	// Zipf is the key-popularity skew exponent theta in [0, 1); 0 = uniform.
	Zipf float64

	// ReadRatio is the fraction of point requests that are reads, in [0, 1].
	ReadRatio float64

	// Clients is the total number of simulated clients (0 = one per core).
	Clients int

	// WorkloadSeed seeds request generation; a fixed seed reproduces
	// bit-identical streams.
	WorkloadSeed uint64

	// Shards partitions the memory controller's channels across
	// independently clocked event queues that synchronize at epoch barriers
	// (see core.Config.Shards). 0 keeps the classic single-queue engine;
	// any N >= 1 selects the sharded engine, whose results are bit-identical
	// for every N — the determinism harness verifies exactly that.
	Shards int

	// ShardQuantum overrides the epoch length in cycles (0 = the maximum
	// legal lookahead, CAS + CriticalWordBeats). Shard-count invariance
	// holds at any fixed quantum; see core.Config.ShardQuantum for the
	// cross-quantum tie-break caveat.
	ShardQuantum uint64

	// ShardParallel runs the shards of each epoch on worker goroutines —
	// a wall-clock knob only, results unchanged.
	ShardParallel bool
}

func (s RunSpec) String() string {
	var base string
	switch {
	case s.Workload != "":
		cores := s.Cores
		if cores < 1 {
			cores = 1
		}
		base = fmt.Sprintf("%s/N=%d/%v/LLC=%dKB/cores=%d/ops=%d/zipf=%g/rr=%g/clients=%d",
			s.Workload, s.N, s.Design, s.LLCBytes/1024, cores, s.Ops, s.Zipf, s.ReadRatio, s.Clients)
	case s.Cores > 1:
		base = fmt.Sprintf("%s/N=%d/%v/LLC=%dKB/cores=%d", s.Bench, s.N, s.Design, s.LLCBytes/1024, s.Cores)
	default:
		base = fmt.Sprintf("%s/N=%d/%v/LLC=%dKB", s.Bench, s.N, s.Design, s.LLCBytes/1024)
	}
	// The shard segment appears only when sharding is requested, so the
	// checkpoint keys of existing single-queue sweeps stay stable.
	if s.Shards > 0 {
		base += fmt.Sprintf("/shards=%d", s.Shards)
		if s.ShardQuantum > 0 {
			base += fmt.Sprintf("@q%d", s.ShardQuantum)
		}
		if s.ShardParallel {
			base += "+par"
		}
	}
	return base
}

// Config materialises the machine configuration for the spec.
func (s RunSpec) Config() (core.Config, error) {
	if s.LLCBytes <= 0 {
		return core.Config{}, fmt.Errorf("experiments: LLCBytes must be positive")
	}
	if s.Scale <= 0 {
		s.Scale = 1
	}
	var cfg core.Config
	if s.TwoLevel {
		cfg = core.TwoLevelConfig(s.Design, s.LLCBytes)
	} else {
		cfg = core.DefaultConfig(s.Design, s.LLCBytes)
	}
	cfg = cfg.Scale(s.Scale)
	if s.Tech != "" {
		tech, ok := mem.TechParams(s.Tech)
		if !ok {
			return core.Config{}, fmt.Errorf("experiments: unknown memory technology %q", s.Tech)
		}
		rowOnly := cfg.Mem.RowOnly
		cfg.Mem = tech
		cfg.Mem.RowOnly = rowOnly
	}
	if s.FastMem {
		rowOnly := cfg.Mem.RowOnly
		cfg.Mem = mem.FastParams()
		cfg.Mem.RowOnly = rowOnly
	}
	if s.SlowWrite > 0 {
		cfg.LLC().WriteAsymmetry = s.SlowWrite
	}
	cfg.L1.PredictOrient = s.PredictOrient
	cfg.L1.Repl, cfg.L2.Repl, cfg.L3.Repl = s.Repl, s.Repl, s.Repl
	if s.SubBuffers > 0 {
		cfg.Mem.BuffersPerBank = s.SubBuffers
	}
	cfg.Mem.WriteFailProb = s.WriteFailProb
	cfg.Mem.FaultSeed = s.FaultSeed
	cfg.OccupancySampleInterval = s.OccupancyInterval
	cfg.MaxCycles = s.MaxCycles
	cfg.Cores = s.Cores
	cfg.Shards = s.Shards
	cfg.ShardQuantum = s.ShardQuantum
	cfg.ShardParallel = s.ShardParallel
	return cfg, cfg.Validate()
}

// layoutTiled re-exports the tiled layout for figure code.
const layoutTiled = compiler.LayoutTiled

// measureMix compiles a benchmark for the logically-2-D target and tallies
// its Fig. 10 access-type distribution (no simulation needed — the mix is a
// property of the compiled trace).
func measureMix(bench string, n int) (compiler.Mix, error) {
	kern, err := workloads.Build(bench, n)
	if err != nil {
		return compiler.Mix{}, err
	}
	prog, err := compiler.Compile(kern, compiler.Target{Logical2D: true})
	if err != nil {
		return compiler.Mix{}, err
	}
	return prog.MeasureMix(), nil
}

// Run executes the spec and returns the machine results.
func Run(spec RunSpec) (*core.Results, error) {
	return RunCtx(context.Background(), spec)
}

// RunCtx is Run under a context; cancellation aborts the simulation with
// sim.ErrTimeout.
func RunCtx(ctx context.Context, spec RunSpec) (*core.Results, error) {
	return RunInstrumentedCtx(ctx, spec, Instrument{})
}

// RunKernel compiles an arbitrary kernel for the spec's design point and
// runs it — the entry point for ablations that rewrite the benchmark (loop
// interchange, custom schedules). The kernel is mutated by compilation;
// build a fresh one per call.
func RunKernel(kern *compiler.Kernel, spec RunSpec) (*core.Results, error) {
	return RunKernelCtx(context.Background(), kern, spec)
}

// RunKernelCtx compiles and runs kern with crash isolation: a panic anywhere
// in compilation or simulation is recovered into an error instead of taking
// down the caller, so one broken design point cannot abort a sweep. The
// spec's Timeout (wall clock) and MaxCycles (simulated clock) budgets are
// both enforced here.
func RunKernelCtx(ctx context.Context, kern *compiler.Kernel, spec RunSpec) (*core.Results, error) {
	return RunKernelInstrumentedCtx(ctx, kern, spec, Instrument{})
}
