// Package experiments is documented in run.go (package comment there); this
// file adds the map from the paper's evaluation to entry points:
//
//	Table I   — RunSpec.Config / core.DefaultConfig
//	Fig. 10   — Suite.Fig10 (access-type distribution)
//	Fig. 11   — Suite.Fig11 (normalized L1 hit rates)
//	Fig. 12   — Suite.Fig12 (normalized cycles × LLC capacity)
//	Fig. 13   — Suite.Fig13 (cache-resident, two-level)
//	Fig. 14   — Suite.Fig14 (LLC accesses + memory bytes)
//	Fig. 15   — Suite.Fig15 (column occupancy over time)
//	Fig. 16   — Suite.Fig16 (2P2L write asymmetry)
//	Fig. 17   — Suite.Fig17 (1.6× faster memory)
//
// Ablations and extensions:
//
//	Suite.AblationLayout     — §IV-C layout mismatch
//	Suite.AblationDense      — dense vs sparse 2P2L fill
//	Suite.AblationDesign3    — §IV-C Design 3 (2P2L L1)
//	Suite.AblationTiling     — §X collaborative tiling
//	Suite.AblationLoopOrder  — §I loop-order (in)sensitivity
//	Suite.AblationTech       — §II ReRAM/PCM presets + energy
//	Suite.AblationMapping    — Same-Set at low associativity
//	Suite.AblationRepl       — replacement policies
//	Suite.AblationSubBuffers — §IX-B multiple sub-row buffers
//	Suite.Report             — paper-vs-measured claims table
//
// Sweep infrastructure:
//
//	RunSweep          — crash-isolated parallel sweep (SweepOptions.Workers)
//	Checkpoint        — mutex-guarded, atomically-flushed resume state
//	CheckDeterminism  — harness proving Workers=N ≡ Workers=1, bit for bit
package experiments
