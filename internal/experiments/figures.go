package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"mdacache/internal/compiler"
	"mdacache/internal/core"
	"mdacache/internal/isa"
	"mdacache/internal/obs"
	"mdacache/internal/stats"
	"mdacache/internal/workloads"
)

// Suite runs the paper's figures at a chosen scale. Scale=1 is the paper's
// configuration (512×512 inputs, 32K/256K/1–4M caches); Scale=k divides the
// matrix dimension by k and cache capacities by k², preserving every
// working-set/capacity ratio.
type Suite struct {
	Scale   int
	Benches []string
	Log     io.Writer // optional progress log

	// Checkpoint, when set, persists every finished simulation so an
	// interrupted figure sweep resumes instead of restarting (see
	// LoadCheckpoint).
	Checkpoint *Checkpoint

	// MaxCycles and Timeout bound each simulation the suite launches
	// (0 = unlimited); see RunSpec.
	MaxCycles uint64
	Timeout   time.Duration

	// Shards, ShardQuantum and ShardParallel select the sharded memory
	// engine for every simulation the suite launches (see RunSpec). The
	// engine is bit-identical across shard counts, so figure output is
	// unchanged for any Shards >= 1; 0 keeps the classic single queue.
	Shards        int
	ShardQuantum  uint64
	ShardParallel bool

	// Profiles, when non-nil, collects a phase profile for every
	// simulation the suite actually runs (checkpoint-resumed and
	// cache-shared runs contribute nothing — they cost no simulation
	// time). Safe under concurrent figure generation.
	Profiles *obs.ProfileLog

	// mu guards cache and inflight; the suite is safe for concurrent
	// figure generation (mdabench -workers runs independent figures in
	// parallel). Simulations are deterministic per spec, so concurrency
	// changes wall-clock time only, never results.
	mu       sync.Mutex
	cache    map[RunSpec]*core.Results
	inflight map[RunSpec]chan struct{}
	logMu    sync.Mutex
}

// NewSuite returns a suite at the given scale over all seven benchmarks.
func NewSuite(scale int, log io.Writer) *Suite {
	return &Suite{
		Scale:    scale,
		Benches:  append([]string(nil), workloads.Names...),
		Log:      log,
		cache:    make(map[RunSpec]*core.Results),
		inflight: make(map[RunSpec]chan struct{}),
	}
}

// BigN returns the scaled counterpart of the paper's 512×512 input.
func (s *Suite) BigN() int { return 512 / s.Scale }

// SmallN returns the scaled counterpart of the paper's 256×256 input.
func (s *Suite) SmallN() int { return 256 / s.Scale }

// LLCSizes returns the paper's L3 capacities (at paper scale; RunSpec
// scaling divides them).
func LLCSizes() []int {
	return []int{1 * core.MB, 3 * core.MB / 2, 2 * core.MB, 4 * core.MB}
}

// MDADesigns are the three MDACache configurations evaluated throughout.
var MDADesigns = []core.Design{core.D1DiffSet, core.D1SameSet, core.D2Sparse}

func (s *Suite) logf(format string, args ...interface{}) {
	if s.Log != nil {
		s.logMu.Lock()
		fmt.Fprintf(s.Log, format+"\n", args...)
		s.logMu.Unlock()
	}
}

// run executes (or reuses) one simulation. Concurrent callers asking for the
// same spec share one simulation (single-flight): the first caller runs it,
// the rest block until the result lands in the cache.
func (s *Suite) run(spec RunSpec) (*core.Results, error) {
	spec.Scale = s.Scale
	spec.MaxCycles = s.MaxCycles
	spec.Timeout = s.Timeout
	spec.Shards = s.Shards
	spec.ShardQuantum = s.ShardQuantum
	spec.ShardParallel = s.ShardParallel
	for {
		s.mu.Lock()
		if s.cache == nil {
			s.cache = make(map[RunSpec]*core.Results)
		}
		if s.inflight == nil {
			s.inflight = make(map[RunSpec]chan struct{})
		}
		if r, ok := s.cache[spec]; ok {
			s.mu.Unlock()
			return r, nil
		}
		if wait, ok := s.inflight[spec]; ok {
			s.mu.Unlock()
			<-wait
			// The leader finished (or failed); re-check the cache. On
			// failure every waiter re-runs and reports the error itself.
			s.mu.Lock()
			if r, ok := s.cache[spec]; ok {
				s.mu.Unlock()
				return r, nil
			}
			s.mu.Unlock()
			continue
		}
		ch := make(chan struct{})
		s.inflight[spec] = ch
		s.mu.Unlock()
		r, err := s.simulate(spec)
		s.mu.Lock()
		if err == nil {
			s.cache[spec] = r
		}
		delete(s.inflight, spec)
		s.mu.Unlock()
		close(ch)
		return r, err
	}
}

// simulate runs one spec, consulting the checkpoint first.
func (s *Suite) simulate(spec RunSpec) (*core.Results, error) {
	key := SpecKey(spec)
	if s.Checkpoint != nil {
		if r, ok := s.Checkpoint.Results(key); ok {
			s.logf("resuming %v from checkpoint", spec)
			return r, nil
		}
	}
	s.logf("running %v ...", spec)
	var ins Instrument
	if s.Profiles != nil {
		ins.Profile = &obs.RunProfile{Name: spec.String()}
	}
	r, err := RunInstrumented(spec, ins)
	if err != nil {
		return nil, err
	}
	s.Profiles.Add(ins.Profile)
	s.logf("  -> %d cycles, %d ops, %.1f MB memory traffic",
		r.Cycles, r.Ops, float64(r.Mem.TotalBytes())/1e6)
	if s.Checkpoint != nil {
		if cerr := s.Checkpoint.Record(key, r, "", ""); cerr != nil {
			s.logf("checkpoint write failed: %v", cerr)
		}
	}
	return r, nil
}

func (s *Suite) baseSpec(bench string, d core.Design, llc int) RunSpec {
	return RunSpec{Bench: bench, N: s.BigN(), Design: d, LLCBytes: llc}
}

// Fig10 reproduces the access-type distribution (row/column ×
// scalar/vector) by data volume for both input sizes.
func (s *Suite) Fig10() (*stats.Table, error) {
	t := stats.NewTable("Fig. 10: access orientation and size preferences (% of data volume)",
		"bench", "input", "row-scalar", "row-vector", "col-scalar", "col-vector")
	for _, n := range []int{s.SmallN(), s.BigN()} {
		for _, b := range s.Benches {
			mix, err := measureMix(b, n)
			if err != nil {
				return nil, err
			}
			t.AddRow(b, fmt.Sprintf("%dx%d", n, n),
				100*mix.Share(isa.Row, false), 100*mix.Share(isa.Row, true),
				100*mix.Share(isa.Col, false), 100*mix.Share(isa.Col, true))
		}
	}
	return t, nil
}

// Fig11 reproduces L1 hit rates normalized to the prefetching 1P1L
// baseline, with the 1 MB LLC and the large input.
func (s *Suite) Fig11() (*stats.Table, error) {
	t := stats.NewTable("Fig. 11: L1 hit rate normalized to 1P1L (1MB LLC)",
		"bench", "1P2L", "1P2L_SameSet", "2P2L")
	means := make([][]float64, len(MDADesigns))
	for _, b := range s.Benches {
		base, err := s.run(s.baseSpec(b, core.D0Baseline, 1*core.MB))
		if err != nil {
			return nil, err
		}
		row := []interface{}{b}
		for di, d := range MDADesigns {
			r, err := s.run(s.baseSpec(b, d, 1*core.MB))
			if err != nil {
				return nil, err
			}
			norm := ratio(r.L1().HitRate(), base.L1().HitRate())
			means[di] = append(means[di], norm)
			row = append(row, norm)
		}
		t.AddRow(row...)
	}
	t.AddRow("Average", stats.Mean(means[0]), stats.Mean(means[1]), stats.Mean(means[2]))
	return t, nil
}

// Fig12 reproduces normalized execution cycles for every LLC capacity.
func (s *Suite) Fig12() ([]*stats.Table, error) {
	var tables []*stats.Table
	for _, llc := range LLCSizes() {
		t := stats.NewTable(
			fmt.Sprintf("Fig. 12: total cycles normalized to 1P1L+prefetch (%.1fMB LLC)", float64(llc)/float64(core.MB)),
			"bench", "1P2L", "1P2L_SameSet", "2P2L")
		means := make([][]float64, len(MDADesigns))
		for _, b := range s.Benches {
			base, err := s.run(s.baseSpec(b, core.D0Baseline, llc))
			if err != nil {
				return nil, err
			}
			row := []interface{}{b}
			for di, d := range MDADesigns {
				r, err := s.run(s.baseSpec(b, d, llc))
				if err != nil {
					return nil, err
				}
				norm := ratio(float64(r.Cycles), float64(base.Cycles))
				means[di] = append(means[di], norm)
				row = append(row, norm)
			}
			t.AddRow(row...)
		}
		// Normalized ratios average geometrically (the paper's convention
		// for speedup-style figures); GeoMean skips non-positive entries,
		// so a degenerate zero-cycle ratio cannot zero out the whole row.
		t.AddRow("Average", stats.GeoMean(means[0]), stats.GeoMean(means[1]), stats.GeoMean(means[2]))
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig13 reproduces the cache-resident study: the small input on a
// two-level hierarchy whose 2 MB L2 is the LLC.
func (s *Suite) Fig13() (*stats.Table, error) {
	t := stats.NewTable("Fig. 13: normalized cycles, cache-resident input (2MB L2 LLC)",
		"bench", "1P2L", "2P2L")
	designs := []core.Design{core.D1DiffSet, core.D2Sparse}
	means := make([][]float64, len(designs))
	for _, b := range s.Benches {
		spec := RunSpec{Bench: b, N: s.SmallN(), Design: core.D0Baseline, LLCBytes: 2 * core.MB, TwoLevel: true}
		base, err := s.run(spec)
		if err != nil {
			return nil, err
		}
		row := []interface{}{b}
		for di, d := range designs {
			spec.Design = d
			r, err := s.run(spec)
			if err != nil {
				return nil, err
			}
			norm := ratio(float64(r.Cycles), float64(base.Cycles))
			means[di] = append(means[di], norm)
			row = append(row, norm)
		}
		t.AddRow(row...)
	}
	t.AddRow("Average", stats.GeoMean(means[0]), stats.GeoMean(means[1]))
	return t, nil
}

// Fig14 reproduces LLC accesses and LLC↔memory transfer bytes normalized
// to the baseline (1 MB LLC, large input).
func (s *Suite) Fig14() (*stats.Table, error) {
	t := stats.NewTable("Fig. 14: LLC accesses and LLC-memory bytes normalized to 1P1L (1MB LLC)",
		"bench", "acc 1P2L", "acc SameSet", "acc 2P2L", "B 1P2L", "B SameSet", "B 2P2L")
	accMeans := make([][]float64, len(MDADesigns))
	byteMeans := make([][]float64, len(MDADesigns))
	for _, b := range s.Benches {
		base, err := s.run(s.baseSpec(b, core.D0Baseline, 1*core.MB))
		if err != nil {
			return nil, err
		}
		accs := make([]float64, len(MDADesigns))
		bytes := make([]float64, len(MDADesigns))
		for di, d := range MDADesigns {
			r, err := s.run(s.baseSpec(b, d, 1*core.MB))
			if err != nil {
				return nil, err
			}
			accs[di] = ratio(float64(r.LLC().Accesses+r.LLC().WritebacksIn), float64(base.LLC().Accesses+base.LLC().WritebacksIn))
			bytes[di] = ratio(float64(r.Mem.TotalBytes()), float64(base.Mem.TotalBytes()))
			accMeans[di] = append(accMeans[di], accs[di])
			byteMeans[di] = append(byteMeans[di], bytes[di])
		}
		t.AddRow(b, accs[0], accs[1], accs[2], bytes[0], bytes[1], bytes[2])
	}
	t.AddRow("Average",
		stats.Mean(accMeans[0]), stats.Mean(accMeans[1]), stats.Mean(accMeans[2]),
		stats.Mean(byteMeans[0]), stats.Mean(byteMeans[1]), stats.Mean(byteMeans[2]))
	return t, nil
}

// Fig15Result is one benchmark's occupancy traces per level.
type Fig15Result struct {
	Bench  string
	Levels []string
	Series []stats.Series // column-line occupancy fraction per level
}

// Fig15 reproduces the column-occupancy-over-time study for sgemm and
// ssyrk on the 1P2L hierarchy.
func (s *Suite) Fig15() ([]Fig15Result, error) {
	var out []Fig15Result
	for _, b := range []string{"sgemm", "ssyrk"} {
		spec := s.baseSpec(b, core.D1DiffSet, 1*core.MB)
		spec.OccupancyInterval = 50000
		r, err := s.run(spec)
		if err != nil {
			return nil, err
		}
		res := Fig15Result{Bench: b, Levels: []string{"L1", "L2", "L3"}}
		for li := range res.Levels {
			ser := stats.Series{Name: res.Levels[li]}
			for _, sample := range r.Occupancy {
				ser.X = append(ser.X, sample.Cycle)
				ser.Y = append(ser.Y, sample.ColFraction(li))
			}
			res.Series = append(res.Series, ser)
		}
		out = append(out, res)
	}
	return out, nil
}

// Fig16 reproduces the 2P2L write-asymmetry sensitivity: +20 cycles per
// STT array write.
func (s *Suite) Fig16() (*stats.Table, error) {
	t := stats.NewTable("Fig. 16: 2P2L with +20-cycle asymmetric writes (normalized to 1P1L)",
		"bench", "2P2L", "2P2L-Slow_Write", "delta%")
	var deltas []float64
	for _, b := range s.Benches {
		base, err := s.run(s.baseSpec(b, core.D0Baseline, 1*core.MB))
		if err != nil {
			return nil, err
		}
		sym, err := s.run(s.baseSpec(b, core.D2Sparse, 1*core.MB))
		if err != nil {
			return nil, err
		}
		slowSpec := s.baseSpec(b, core.D2Sparse, 1*core.MB)
		slowSpec.SlowWrite = 20
		slow, err := s.run(slowSpec)
		if err != nil {
			return nil, err
		}
		ns := ratio(float64(sym.Cycles), float64(base.Cycles))
		nw := ratio(float64(slow.Cycles), float64(base.Cycles))
		deltas = append(deltas, 100*(nw-ns))
		t.AddRow(b, ns, nw, 100*(nw-ns))
	}
	t.AddRow("Average", "", "", stats.Mean(deltas))
	return t, nil
}

// Fig17 reproduces the fast-main-memory sensitivity: every design against
// a 1.6× faster memory, normalized to the (slow-memory) 1P1L baseline.
func (s *Suite) Fig17() (*stats.Table, error) {
	t := stats.NewTable("Fig. 17: 1.6x faster main memory (all normalized to 1P1L, base memory)",
		"bench", "1P1L-fast", "1P2L", "1P2L-fast", "SameSet-fast", "2P2L-fast")
	type cell struct {
		d    core.Design
		fast bool
	}
	cols := []cell{
		{core.D0Baseline, true},
		{core.D1DiffSet, false},
		{core.D1DiffSet, true},
		{core.D1SameSet, true},
		{core.D2Sparse, true},
	}
	means := make([][]float64, len(cols))
	for _, b := range s.Benches {
		base, err := s.run(s.baseSpec(b, core.D0Baseline, 1*core.MB))
		if err != nil {
			return nil, err
		}
		row := []interface{}{b}
		for ci, c := range cols {
			spec := s.baseSpec(b, c.d, 1*core.MB)
			spec.FastMem = c.fast
			r, err := s.run(spec)
			if err != nil {
				return nil, err
			}
			norm := ratio(float64(r.Cycles), float64(base.Cycles))
			means[ci] = append(means[ci], norm)
			row = append(row, norm)
		}
		t.AddRow(row...)
	}
	avg := []interface{}{"Average"}
	for ci := range cols {
		avg = append(avg, stats.Mean(means[ci]))
	}
	t.AddRow(avg...)
	return t, nil
}

// AblationLayout quantifies the §IV-C Design-0 note: a 1P1L hierarchy
// forced onto the 2-D-optimised (tiled) layout, which the paper reports as
// roughly a 2× slowdown.
func (s *Suite) AblationLayout() (*stats.Table, error) {
	t := stats.NewTable("Ablation: 1P1L on 2-D-optimized (tiled) layout, normalized to 1P1L on 1-D layout",
		"bench", "tiled/linear cycles")
	var vals []float64
	// A representative subset at the small input: the mismatched-layout
	// baselines are the slowest simulations in the repository (every
	// scalar access misses), and this ablation is a direction check.
	for _, b := range ablationBenches(s.Benches) {
		base := s.baseSpec(b, core.D0Baseline, 1*core.MB)
		base.N = s.SmallN()
		rb, err := s.run(base)
		if err != nil {
			return nil, err
		}
		spec := base
		spec.LayoutOverride = layoutTiled
		r, err := s.run(spec)
		if err != nil {
			return nil, err
		}
		v := ratio(float64(r.Cycles), float64(rb.Cycles))
		vals = append(vals, v)
		t.AddRow(b, v)
	}
	t.AddRow("Average", stats.Mean(vals))
	return t, nil
}

// AblationDense compares sparse and dense 2P2L fill.
func (s *Suite) AblationDense() (*stats.Table, error) {
	t := stats.NewTable("Ablation: dense vs sparse 2P2L fill (normalized to 1P1L)",
		"bench", "2P2L sparse", "2P2L dense", "dense mem bytes / sparse")
	for _, b := range ablationBenches(s.Benches) {
		base, err := s.run(s.baseSpec(b, core.D0Baseline, 1*core.MB))
		if err != nil {
			return nil, err
		}
		sp, err := s.run(s.baseSpec(b, core.D2Sparse, 1*core.MB))
		if err != nil {
			return nil, err
		}
		dn, err := s.run(s.baseSpec(b, core.D2Dense, 1*core.MB))
		if err != nil {
			return nil, err
		}
		t.AddRow(b,
			ratio(float64(sp.Cycles), float64(base.Cycles)),
			ratio(float64(dn.Cycles), float64(base.Cycles)),
			ratio(float64(dn.Mem.TotalBytes()), float64(sp.Mem.TotalBytes())))
	}
	return t, nil
}

// AblationDesign3 evaluates the paper's future-work Design 3 (2P2L caches
// at every level).
func (s *Suite) AblationDesign3() (*stats.Table, error) {
	t := stats.NewTable("Extension: Design 3 (2P2L L1+LLC) normalized to 1P1L",
		"bench", "2P2L_L1")
	var vals []float64
	for _, b := range s.Benches {
		base, err := s.run(s.baseSpec(b, core.D0Baseline, 1*core.MB))
		if err != nil {
			return nil, err
		}
		r, err := s.run(s.baseSpec(b, core.D3AllTile, 1*core.MB))
		if err != nil {
			return nil, err
		}
		v := ratio(float64(r.Cycles), float64(base.Cycles))
		vals = append(vals, v)
		t.AddRow(b, v)
	}
	t.AddRow("Average", stats.Mean(vals))
	return t, nil
}

// AblationTiling evaluates the paper's §X future-work proposal:
// hardware-software collaborative tiling, blocking the loop nests at the
// 2P2L cache's 2-D block granularity (8) and at a larger multiple (32).
func (s *Suite) AblationTiling() (*stats.Table, error) {
	t := stats.NewTable("Extension: iteration-space tiling on 2P2L (normalized to untiled 2P2L)",
		"bench", "untiled", "tile=8", "tile=32")
	for _, b := range []string{"sgemm", "ssyr2k", "strmm"} {
		un, err := s.run(s.baseSpec(b, core.D2Sparse, 1*core.MB))
		if err != nil {
			return nil, err
		}
		row := []interface{}{b, 1.0}
		for _, ts := range []int{8, 32} {
			spec := s.baseSpec(b, core.D2Sparse, 1*core.MB)
			spec.TileSize = ts
			r, err := s.run(spec)
			if err != nil {
				return nil, err
			}
			row = append(row, ratio(float64(r.Cycles), float64(un.Cycles)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationLoopOrder quantifies the §I claim that MDA caching obviates the
// compiler's ambiguous loop-ordering tradeoff: sgemm is run with its k-loop
// innermost (vectorizes A rows + B columns on a 2-D target; nothing on 1-D)
// and with the j-loop innermost (the 1-D-friendly order). Each design's two
// orders are normalized to its better one — a large worst/best ratio means
// the design is order-sensitive.
func (s *Suite) AblationLoopOrder() (*stats.Table, error) {
	t := stats.NewTable("Extension: loop-order sensitivity of sgemm (worst order / best order per design)",
		"design", "k-innermost", "j-innermost", "worst/best")
	orders := [][]string{{"i", "j", "k"}, {"i", "k", "j"}}
	for _, d := range []core.Design{core.D0Baseline, core.D1DiffSet, core.D2Sparse} {
		var cycles []float64
		for _, order := range orders {
			kern := workloads.Sgemm(s.BigN())
			nest, err := compiler.Interchange(kern.Nests[0], order)
			if err != nil {
				return nil, err
			}
			kern.Nests[0] = nest
			spec := s.baseSpec("sgemm", d, 1*core.MB)
			spec.Scale = s.Scale
			s.logf("running sgemm order=%v on %v ...", order, d)
			r, err := RunKernel(kern, spec)
			if err != nil {
				return nil, err
			}
			cycles = append(cycles, float64(r.Cycles))
		}
		best, worst := cycles[0], cycles[1]
		if worst < best {
			best, worst = worst, best
		}
		t.AddRow(d, cycles[0]/best, cycles[1]/best, worst/best)
	}
	return t, nil
}

// AblationSubBuffers verifies the §IX-B finding: the paper implemented a
// Gulur-style multiple sub-row-buffer scheme and found "less than 1%
// impact" for these single-threaded workloads.
func (s *Suite) AblationSubBuffers() (*stats.Table, error) {
	t := stats.NewTable("Ablation: multiple sub-row/column buffers per bank (1P2L, normalized to 1 buffer)",
		"bench", "1 buffer", "4 buffers", "delta%")
	var deltas []float64
	for _, b := range ablationBenches(s.Benches) {
		one, err := s.run(s.baseSpec(b, core.D1DiffSet, 1*core.MB))
		if err != nil {
			return nil, err
		}
		spec := s.baseSpec(b, core.D1DiffSet, 1*core.MB)
		spec.SubBuffers = 4
		four, err := s.run(spec)
		if err != nil {
			return nil, err
		}
		d := 100 * (ratio(float64(four.Cycles), float64(one.Cycles)) - 1)
		deltas = append(deltas, d)
		t.AddRow(b, 1.0, ratio(float64(four.Cycles), float64(one.Cycles)), d)
	}
	t.AddRow("Average", "", "", stats.Mean(deltas))
	return t, nil
}

// AblationRepl compares replacement policies on the 1P2L hierarchy: the
// suite's streaming kernels are exactly where LRU, random and
// scan-resistant SRRIP diverge.
func (s *Suite) AblationRepl() (*stats.Table, error) {
	t := stats.NewTable("Ablation: replacement policy on 1P2L (normalized to LRU)",
		"bench", "lru", "random", "srrip")
	for _, b := range ablationBenches(s.Benches) {
		spec := s.baseSpec(b, core.D1DiffSet, 1*core.MB)
		base, err := s.run(spec)
		if err != nil {
			return nil, err
		}
		row := []interface{}{b, 1.0}
		for _, repl := range []core.ReplPolicy{core.ReplRandom, core.ReplSRRIP} {
			rs := spec
			rs.Repl = repl
			r, err := s.run(rs)
			if err != nil {
				return nil, err
			}
			row = append(row, ratio(float64(r.Cycles), float64(base.Cycles)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationMapping tests §IV-C's observation that Same-Set mapping "maps all
// rows and columns in a 2-D block into the same set, making it impractical
// for lower associativity caches": both 1P2L mappings are run with the
// standard associativity and with 2-way caches, normalized to the
// same-associativity Different-Set configuration.
func (s *Suite) AblationMapping() (*stats.Table, error) {
	t := stats.NewTable("Ablation: Same-Set vs Different-Set mapping under low associativity (sgemm)",
		"assoc", "DifferentSet cycles", "SameSet / DifferentSet")
	for _, assoc := range []int{0, 2} { // 0 = the design default (4/8/8-way)
		var cycles [2]float64
		for mi, d := range []core.Design{core.D1DiffSet, core.D1SameSet} {
			spec := s.baseSpec("sgemm", d, 1*core.MB)
			spec.Scale = s.Scale
			cfg, err := spec.Config()
			if err != nil {
				return nil, err
			}
			label := "default"
			if assoc > 0 {
				label = fmt.Sprintf("%d-way", assoc)
				forceAssoc(&cfg.L1, assoc)
				forceAssoc(&cfg.L2, assoc)
				forceAssoc(&cfg.L3, assoc)
			}
			s.logf("running mapping ablation %v assoc=%s ...", d, label)
			prog, err := compiler.Compile(workloads.Sgemm(s.BigN()), compiler.Target{Logical2D: true})
			if err != nil {
				return nil, err
			}
			m, err := core.Build(cfg)
			if err != nil {
				return nil, err
			}
			r, err := m.Run(prog.Trace())
			if err != nil {
				return nil, err
			}
			cycles[mi] = float64(r.Cycles)
		}
		label := "default"
		if assoc > 0 {
			label = fmt.Sprintf("%d-way", assoc)
		}
		t.AddRow(label, cycles[0], ratio(cycles[1], cycles[0]))
	}
	return t, nil
}

// forceAssoc rewrites a level to the given associativity, keeping capacity.
func forceAssoc(p *core.CacheParams, assoc int) {
	if p.SizeBytes == 0 {
		return
	}
	p.Assoc = assoc
	p.SizeBytes -= p.SizeBytes % (assoc * isa.TileSize) // tile-safe for any level
	if p.SizeBytes == 0 {
		p.SizeBytes = assoc * isa.TileSize
	}
}

// AblationTech evaluates the §II claim that the approach carries over to
// other crosspoint technologies: sgemm per technology (STT, ReRAM, PCM),
// each MDA design normalized to the same-technology baseline, plus the
// memory-energy ratio.
func (s *Suite) AblationTech() (*stats.Table, error) {
	t := stats.NewTable("Extension: crosspoint technology sensitivity (sgemm; normalized per technology)",
		"tech", "1P2L cycles", "2P2L cycles", "1P2L memory energy")
	for _, tech := range []string{"stt", "reram", "pcm"} {
		specTech := tech
		if tech == "stt" {
			specTech = "" // identical to the default: reuse cached runs
		}
		base := s.baseSpec("sgemm", core.D0Baseline, 1*core.MB)
		base.Tech = specTech
		rb, err := s.run(base)
		if err != nil {
			return nil, err
		}
		row := []interface{}{tech}
		var d1 *core.Results
		for _, d := range []core.Design{core.D1DiffSet, core.D2Sparse} {
			spec := s.baseSpec("sgemm", d, 1*core.MB)
			spec.Tech = specTech
			r, err := s.run(spec)
			if err != nil {
				return nil, err
			}
			if d == core.D1DiffSet {
				d1 = r
			}
			row = append(row, ratio(float64(r.Cycles), float64(rb.Cycles)))
		}
		row = append(row, ratio(d1.Mem.Energy.TotalPJ(), rb.Mem.Energy.TotalPJ()))
		t.AddRow(row...)
	}
	return t, nil
}

// ablationBenches picks the ablation subset: one row/column-balanced BLAS
// kernel, the column-extreme kernel and the two HTAP mixes, intersected
// with the suite's configured benchmarks.
func ablationBenches(configured []string) []string {
	want := map[string]bool{"sgemm": true, "sobel": true, "htap1": true, "htap2": true}
	var out []string
	for _, b := range configured {
		if want[b] {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = configured
	}
	return out
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
