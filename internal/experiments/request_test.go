package experiments

import (
	"testing"

	"mdacache/internal/core"
	"mdacache/internal/obs"
)

func requestSpec(workload string, cores int) RunSpec {
	return RunSpec{
		Workload:     workload,
		N:            32,
		Design:       core.D2Sparse,
		LLCBytes:     256 * 1024,
		Scale:        16,
		Cores:        cores,
		Ops:          20_000,
		Zipf:         0.9,
		ReadRatio:    0.9,
		Clients:      2 * cores,
		WorkloadSeed: 42,
	}
}

// TestRunRequestWorkloads drives both request families end to end on
// single- and multi-core machines: the machine must execute exactly the
// spec's op budget (streams are exact, nothing truncated or duplicated).
func TestRunRequestWorkloads(t *testing.T) {
	for _, workload := range []string{"kv", "htap"} {
		for _, cores := range []int{1, 2, 4} {
			spec := requestSpec(workload, cores)
			res, err := Run(spec)
			if err != nil {
				t.Fatalf("%v: %v", spec, err)
			}
			if res.Ops != uint64(spec.Ops) {
				t.Fatalf("%v: machine executed %d ops, want %d", spec, res.Ops, spec.Ops)
			}
			if res.Cycles == 0 {
				t.Fatalf("%v: zero-cycle run", spec)
			}
		}
	}
}

// TestRunRequestTwiceBitIdentical pins run-level determinism for request
// workloads: two full simulations of the same spec produce bit-identical
// metric snapshots.
func TestRunRequestTwiceBitIdentical(t *testing.T) {
	for _, workload := range []string{"kv", "htap"} {
		spec := requestSpec(workload, 2)
		a, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if d := obs.DiffSnapshots(a.Metrics, b.Metrics); d != "" {
			t.Fatalf("%v: runs diverge: %s", spec, d)
		}
	}
}

// TestRunRequestRowOnlyDesign checks the 1-D fallback: on a row-only design
// the generator must emit no column ops, so the run completes instead of
// dying on sim.ErrInvalidAccess.
func TestRunRequestRowOnlyDesign(t *testing.T) {
	spec := requestSpec("htap", 2)
	spec.Design = core.D0Baseline
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != uint64(spec.Ops) {
		t.Fatalf("executed %d ops, want %d", res.Ops, spec.Ops)
	}
	if rowOps, _ := res.Metrics.Counter("cpu0.ops.col"); rowOps != 0 {
		t.Fatalf("row-only design saw %d column ops", rowOps)
	}
}

// TestRunRequestValidation checks spec errors surface instead of panicking.
func TestRunRequestValidation(t *testing.T) {
	spec := requestSpec("kv", 1)
	spec.Zipf = 1.5
	if _, err := Run(spec); err == nil {
		t.Fatal("zipf=1.5 accepted, want error")
	}
	spec = requestSpec("nosuch", 1)
	if _, err := Run(spec); err == nil {
		t.Fatal("unknown workload accepted, want error")
	}
}
