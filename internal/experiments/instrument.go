package experiments

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"mdacache/internal/compiler"
	"mdacache/internal/core"
	"mdacache/internal/obs"
	"mdacache/internal/stats"
	"mdacache/internal/workloads"
)

// Instrument carries the optional observability hooks for one run. The zero
// value is fully off: no tracing, no profiling, and no cost beyond a nil
// check per event site.
type Instrument struct {
	// Tracer receives the run's simulation events (nil = tracing off). The
	// tracer is attached to the machine via core.Config.Tracer; it never
	// becomes part of the RunSpec, so checkpoint keys and determinism are
	// unaffected.
	Tracer *obs.Tracer

	// Profile, when non-nil, accumulates a wall/sim-time breakdown of the
	// run's phases (compile, build, simulate). Profiles measure wall-clock
	// time and are therefore non-deterministic; they are deliberately kept
	// out of core.Results so determinism comparisons never see them.
	Profile *obs.RunProfile
}

// RunInstrumented is Run with observability hooks.
func RunInstrumented(spec RunSpec, ins Instrument) (*core.Results, error) {
	return RunInstrumentedCtx(context.Background(), spec, ins)
}

// RunInstrumentedCtx is RunCtx with observability hooks: the kernel build and
// tiling are charged to the "compile" phase of ins.Profile.
func RunInstrumentedCtx(ctx context.Context, spec RunSpec, ins Instrument) (*core.Results, error) {
	if spec.Workload != "" {
		return runRequestInstrumentedCtx(ctx, spec, ins)
	}
	t0 := time.Now()
	kern, err := workloads.Build(spec.Bench, spec.N)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	if spec.TileSize > 0 {
		sizes := map[string]int{}
		for _, idx := range []string{"i", "j", "k"} {
			sizes[idx] = spec.TileSize
		}
		compiler.TileKernel(kern, sizes)
	}
	ins.Profile.Add(obs.ProfilePhase{Name: "workload", Wall: time.Since(t0)})
	return RunKernelInstrumentedCtx(ctx, kern, spec, ins)
}

// RunKernelInstrumentedCtx is RunKernelCtx with observability hooks. Phase
// accounting: "compile" covers trace compilation, "build" machine
// construction, "simulate" the event loop (with simulated cycles and executed
// event counts attached).
func RunKernelInstrumentedCtx(ctx context.Context, kern *compiler.Kernel, spec RunSpec, ins Instrument) (res *core.Results, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("experiments: %v panicked: %v\n%s", spec, r, debug.Stack())
		}
	}()
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	cfg.Tracer = ins.Tracer

	t0 := time.Now()
	prog, err := compiler.Compile(kern, compiler.Target{
		Logical2D: spec.Design.Logical2D(),
		Layout:    spec.LayoutOverride,
	})
	if err != nil {
		return nil, err
	}
	ins.Profile.Add(obs.ProfilePhase{Name: "compile", Wall: time.Since(t0)})

	t0 = time.Now()
	m, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}
	ins.Profile.Add(obs.ProfilePhase{Name: "build", Wall: time.Since(t0)})

	if spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.Timeout)
		defer cancel()
	}
	t0 = time.Now()
	if len(m.CPUs) > 1 {
		res, err = m.RunTracesCtx(ctx, ShardTrace(prog.Trace(), len(m.CPUs))...)
	} else {
		res, err = m.RunCtx(ctx, prog.Trace())
	}
	if err != nil {
		return nil, err
	}
	events, _ := res.Metrics.Counter("sim.events")
	ins.Profile.Add(obs.ProfilePhase{
		Name:   "simulate",
		Wall:   time.Since(t0),
		Cycles: res.Cycles,
		Events: events,
	})
	return res, nil
}

// ProfileTable renders run profiles as a table: one row per phase plus a
// total row per run.
func ProfileTable(profiles []*obs.RunProfile) *stats.Table {
	t := stats.NewTable("Run profiles", "run", "phase", "wall", "sim-cycles", "events")
	for _, p := range profiles {
		if p == nil {
			continue
		}
		for _, ph := range p.Phases {
			cyc, ev := interface{}("-"), interface{}("-")
			if ph.Cycles > 0 {
				cyc = ph.Cycles
			}
			if ph.Events > 0 {
				ev = ph.Events
			}
			t.AddRow(p.Name, ph.Name, ph.Wall.Round(time.Microsecond).String(), cyc, ev)
		}
		t.AddRow(p.Name, "total", p.Total().Round(time.Microsecond).String(), "", "")
	}
	return t
}
