package experiments

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"mdacache/internal/compiler"
	"mdacache/internal/core"
)

// testSpec is a fast-running healthy design point.
func testSpec(bench string, d core.Design) RunSpec {
	return RunSpec{Bench: bench, N: 16, Design: d, LLCBytes: 1 * core.MB, Scale: 16}
}

func TestSweepIsolatesFailingSpec(t *testing.T) {
	specs := []RunSpec{
		testSpec("sgemm", core.D0Baseline),
		{Bench: "nosuch", N: 16, Design: core.D0Baseline, LLCBytes: 1 * core.MB, Scale: 16},
		testSpec("sgemm", core.D1DiffSet),
		{Bench: "sobel", N: 16, Design: core.D1DiffSet, LLCBytes: 1 * core.MB, Scale: 16, MaxCycles: 5},
	}
	runs, err := RunSweep(context.Background(), specs, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(specs) {
		t.Fatalf("got %d runs, want %d", len(runs), len(specs))
	}
	for _, i := range []int{0, 2} {
		if !runs[i].OK() || runs[i].Results == nil || runs[i].Results.Cycles == 0 {
			t.Fatalf("healthy run %d failed: %+v", i, runs[i].Err)
		}
	}
	if runs[1].OK() || !strings.Contains(runs[1].Err, "nosuch") {
		t.Fatalf("bad-benchmark run not annotated: %+v", runs[1])
	}
	if runs[3].OK() || !strings.Contains(runs[3].Err, "cycle") {
		t.Fatalf("cycle-budget run not annotated: %+v", runs[3])
	}
}

func TestSweepCheckpointResume(t *testing.T) {
	state := filepath.Join(t.TempDir(), "sweep.json")
	specs := []RunSpec{
		testSpec("sgemm", core.D0Baseline),
		testSpec("sgemm", core.D1DiffSet),
	}
	// First pass simulates an interrupted sweep: only the first spec runs.
	first, err := RunSweep(context.Background(), specs[:1], SweepOptions{StatePath: state})
	if err != nil {
		t.Fatal(err)
	}
	if first[0].Resumed || !first[0].OK() {
		t.Fatalf("first pass: %+v", first[0])
	}
	// Second pass over the full list must reload spec 0 and simulate spec 1.
	second, err := RunSweep(context.Background(), specs, SweepOptions{StatePath: state})
	if err != nil {
		t.Fatal(err)
	}
	if !second[0].Resumed || second[0].Attempts != 0 {
		t.Fatalf("spec 0 re-simulated instead of resumed: %+v", second[0])
	}
	if second[1].Resumed || second[1].Attempts != 1 {
		t.Fatalf("spec 1 not simulated: %+v", second[1])
	}
	if second[0].Results.Cycles != first[0].Results.Cycles {
		t.Fatalf("resumed results diverge: %d vs %d",
			second[0].Results.Cycles, first[0].Results.Cycles)
	}
	// Failures are checkpointed too.
	bad := []RunSpec{{Bench: "nosuch", N: 16, Design: core.D0Baseline, LLCBytes: 1 * core.MB, Scale: 16}}
	r1, err := RunSweep(context.Background(), bad, SweepOptions{StatePath: state})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSweep(context.Background(), bad, SweepOptions{StatePath: state})
	if err != nil {
		t.Fatal(err)
	}
	if r1[0].OK() || r2[0].OK() || !r2[0].Resumed {
		t.Fatalf("failure not memoised: %+v then %+v", r1[0], r2[0])
	}
}

func TestSweepCancelledReturnsContiguousPrefix(t *testing.T) {
	// A sweep cancelled mid-flight must return ctx.Err() plus the contiguous
	// completed prefix — never a slice with holes, which would misalign any
	// caller indexing results by spec position (examples/sweep does exactly
	// that).
	state := filepath.Join(t.TempDir(), "sweep.json")
	specs := []RunSpec{
		testSpec("sgemm", core.D0Baseline),
		testSpec("sgemm", core.D1DiffSet),
		testSpec("sobel", core.D0Baseline),
	}
	// Complete spec 0 so the cancelled pass below has a resumable prefix.
	if _, err := RunSweep(context.Background(), specs[:1], SweepOptions{StatePath: state}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runs, err := RunSweep(ctx, specs, SweepOptions{StatePath: state, Workers: 2})
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	if len(runs) < 1 {
		t.Fatalf("resumed spec 0 missing from prefix: %d runs", len(runs))
	}
	for i, r := range runs {
		if r.Key == "" || (r.Results == nil && r.Err == "") {
			t.Fatalf("prefix entry %d is unfinished: %+v", i, r)
		}
	}
	if !runs[0].Resumed || runs[0].Results == nil {
		t.Fatalf("spec 0 should be resumed from the checkpoint: %+v", runs[0])
	}
	// Re-running with a live context finishes the sweep; the checkpoint is
	// intact despite the cancellation.
	full, err := RunSweep(context.Background(), specs, SweepOptions{StatePath: state, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(specs) || !full[0].Resumed {
		t.Fatalf("post-cancel resume broken: %+v", full)
	}
}

func TestSweepLogIsLineAtomic(t *testing.T) {
	// Progress lines from concurrent workers funnel through one goroutine;
	// the captured log must consist solely of complete, well-formed lines.
	var buf bytes.Buffer
	specs := []RunSpec{
		testSpec("sgemm", core.D0Baseline),
		testSpec("sgemm", core.D1DiffSet),
		testSpec("sgemm", core.D1SameSet),
		testSpec("sgemm", core.D2Sparse),
		{Bench: "nosuch", N: 16, Design: core.D0Baseline, LLCBytes: 1 * core.MB, Scale: 16},
	}
	if _, err := RunSweep(context.Background(), specs, SweepOptions{Workers: 4, Log: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("log does not end in a newline: %q", out)
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	running, failed := 0, 0
	for _, line := range lines {
		if !strings.HasPrefix(line, "sweep: ") {
			t.Fatalf("interleaved or malformed log line: %q", line)
		}
		if strings.Contains(line, "running") {
			running++
		}
		if strings.Contains(line, "FAILED") {
			failed++
		}
	}
	if running != len(specs) {
		t.Fatalf("%d 'running' lines for %d specs:\n%s", running, len(specs), out)
	}
	if failed != 1 {
		t.Fatalf("%d FAILED lines, want 1:\n%s", failed, out)
	}
}

func TestSweepTableAnnotatesFailures(t *testing.T) {
	runs := []SweepRun{
		{Spec: testSpec("sgemm", core.D0Baseline), Err: "", Results: &core.Results{Cycles: 42}},
		{Spec: testSpec("sgemm", core.D1DiffSet), Err: "boom"},
	}
	out := SweepTable(runs).String()
	if !strings.Contains(out, "FAILED: boom") || !strings.Contains(out, "42") {
		t.Fatalf("sweep table missing annotations:\n%s", out)
	}
}

func TestRunKernelRecoversPanic(t *testing.T) {
	// A structurally broken kernel (nil array in a ref) panics inside the
	// compiler; RunKernel must convert that into an error, not crash.
	kern := &compiler.Kernel{
		Name: "broken",
		Nests: []compiler.Nest{{
			Loops: []compiler.Loop{compiler.For("i", 4)},
			Body: []compiler.Stmt{{
				Refs: []compiler.Ref{compiler.R(nil, compiler.Idx("i"), compiler.Idx("i"))},
			}},
		}},
	}
	_, err := RunKernel(kern, testSpec("sgemm", core.D0Baseline))
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not recovered into error: %v", err)
	}
}

func TestSuiteCheckpointRoundtrip(t *testing.T) {
	state := filepath.Join(t.TempDir(), "suite.json")
	ckpt, err := LoadCheckpoint(state)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSuite(16, nil)
	s.Benches = []string{"sgemm"}
	s.Checkpoint = ckpt
	r1, err := s.run(RunSpec{Bench: "sgemm", N: 16, Design: core.D0Baseline, LLCBytes: 1 * core.MB})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh suite over the same state file must reuse the stored run.
	ckpt2, err := LoadCheckpoint(state)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt2.Len() != 1 {
		t.Fatalf("checkpoint holds %d runs, want 1", ckpt2.Len())
	}
	s2 := NewSuite(16, nil)
	s2.Checkpoint = ckpt2
	r2, err := s2.run(RunSpec{Bench: "sgemm", N: 16, Design: core.D0Baseline, LLCBytes: 1 * core.MB})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r2.Cycles == 0 {
		t.Fatalf("checkpointed results diverge: %d vs %d", r1.Cycles, r2.Cycles)
	}
}
