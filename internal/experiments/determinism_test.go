package experiments

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"mdacache/internal/core"
)

// allDesigns is the paper's four evaluated design points — the set the
// determinism satellites cover.
var allDesigns = []core.Design{core.D0Baseline, core.D1DiffSet, core.D1SameSet, core.D2Sparse}

// faultSpec is a design point sized so dirty lines actually reach main
// memory (N=32 with a small scaled LLC): write-fault injection fires, which
// the determinism tests assert to keep their claims non-vacuous.
func faultSpec(bench string, d core.Design, seed uint64) RunSpec {
	return RunSpec{
		Bench: bench, N: 32, Design: d, LLCBytes: 256 * 1024, Scale: 16,
		WriteFailProb: 0.2, FaultSeed: seed,
	}
}

// detSpecs is the determinism harness's workload: every design, plus
// fault-injected variants whose RNG must be re-derived from the spec (never
// shared), plus a failing spec (cycle budget) so failure annotations are
// covered too.
func detSpecs() []RunSpec {
	var specs []RunSpec
	for _, d := range allDesigns {
		specs = append(specs, testSpec("sgemm", d))
	}
	// Fault injection with two different seeds proves seeds come from the
	// spec, not from shared RNG state.
	specs = append(specs,
		faultSpec("sgemm", core.D1DiffSet, 12345),
		faultSpec("sobel", core.D2Sparse, 99))
	// A deterministic failure: tiny cycle budget.
	f := testSpec("strmm", core.D1SameSet)
	f.MaxCycles = 100
	specs = append(specs, f)
	return specs
}

// TestRunTwiceBitIdentical is the end-to-end determinism satellite: every
// design run twice with the same spec (same seed) yields bit-identical
// core.Results, including the fault-injected configurations.
func TestRunTwiceBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		spec RunSpec
	}{
		{"1P1L", testSpec("sgemm", core.D0Baseline)},
		{"1P2L", testSpec("sgemm", core.D1DiffSet)},
		{"1P2L_SameSet", testSpec("sgemm", core.D1SameSet)},
		{"2P2L", testSpec("sgemm", core.D2Sparse)},
		{"1P2L+faults", faultSpec("sgemm", core.D1DiffSet, 4242)},
		{"2P2L+faults", faultSpec("sobel", core.D2Sparse, 4242)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel() // concurrent designs also cross-check shared state
			r1, err := Run(tc.spec)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			r2, err := Run(tc.spec)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("results diverge between identical runs: %s", diffResults(r1, r2))
			}
			if tc.spec.WriteFailProb > 0 && r1.Mem.WriteRetries == 0 {
				t.Fatal("fault injection never fired; the determinism claim is vacuous")
			}
		})
	}
}

// TestSweepParallelMatchesSequential is the tentpole's acceptance test:
// RunSweep with Workers=N>1 returns a []SweepRun deeply equal to the
// Workers=1 result — same specs, same seeds, fault injection enabled — and
// runs under -race in CI.
func TestSweepParallelMatchesSequential(t *testing.T) {
	if err := CheckDeterminism(context.Background(), detSpecs(), 4, SweepOptions{Retries: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestSweepWorkerCountInvariance sweeps the worker count itself: 1, 2, 3 and
// 8 workers over the same specs must agree run for run.
func TestSweepWorkerCountInvariance(t *testing.T) {
	specs := detSpecs()
	base, err := RunSweep(context.Background(), specs, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8} {
		got, err := RunSweep(context.Background(), specs, SweepOptions{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if err := DiffRuns(base, got); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
	}
}

// TestSweepParallelCheckpointResume proves -resume works across worker
// counts: a parallel sweep's checkpoint resumes a later parallel sweep with
// identical results and zero re-simulation.
func TestSweepParallelCheckpointResume(t *testing.T) {
	state := t.TempDir() + "/sweep.json"
	specs := detSpecs()
	first, err := RunSweep(context.Background(), specs, SweepOptions{Workers: 4, StatePath: state})
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunSweep(context.Background(), specs, SweepOptions{Workers: 4, StatePath: state})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range second {
		if !r.Resumed || r.Attempts != 0 {
			t.Fatalf("run %d (%v) re-simulated instead of resumed: %+v", i, r.Spec, r)
		}
		if !reflect.DeepEqual(r.Results, first[i].Results) || r.Err != first[i].Err {
			t.Fatalf("run %d (%v) resumed with different outcome", i, r.Spec)
		}
	}
	// A sequential sweep resumes the parallel checkpoint just as well.
	seq, err := RunSweep(context.Background(), specs, SweepOptions{Workers: 1, StatePath: state})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if !seq[i].Resumed {
			t.Fatalf("sequential resume re-simulated run %d", i)
		}
	}
}

// TestSweepFlushEvery checks the periodic-flush path persists every run by
// the time RunSweep returns, even when flushes are batched.
func TestSweepFlushEvery(t *testing.T) {
	state := t.TempDir() + "/sweep.json"
	specs := detSpecs()
	if _, err := RunSweep(context.Background(), specs, SweepOptions{
		Workers: 4, StatePath: state, FlushEvery: 64, // larger than the spec count
	}); err != nil {
		t.Fatal(err)
	}
	ckpt, err := LoadCheckpoint(state)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.Len() != len(specs) {
		t.Fatalf("final flush persisted %d runs, want %d", ckpt.Len(), len(specs))
	}
}

// TestCheckDeterminismRejectsDivergence makes sure the harness actually
// detects differences instead of rubber-stamping.
func TestCheckDeterminismRejectsDivergence(t *testing.T) {
	a := []SweepRun{{Key: "k", Results: &core.Results{Cycles: 1}}}
	b := []SweepRun{{Key: "k", Results: &core.Results{Cycles: 2}}}
	if err := DiffRuns(a, b); err == nil {
		t.Fatal("diverging cycles not detected")
	}
	b = []SweepRun{{Key: "other", Results: &core.Results{Cycles: 1}}}
	if err := DiffRuns(a, b); err == nil {
		t.Fatal("diverging keys not detected")
	}
	if err := DiffRuns(a, a[:0]); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

// BenchmarkSweep measures the wall-clock effect of the worker pool on a
// multi-design sweep; run with -bench Sweep -cpu 1 to pin GOMAXPROCS.
//
//	go test ./internal/experiments -bench Sweep -benchtime 2x
func BenchmarkSweep(b *testing.B) {
	var specs []RunSpec
	for _, d := range allDesigns {
		for _, bench := range []string{"sgemm", "sobel", "strmm"} {
			specs = append(specs, testSpec(bench, d))
		}
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runs, err := RunSweep(context.Background(), specs, SweepOptions{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range runs {
					if !r.OK() {
						b.Fatalf("%v failed: %s", r.Spec, r.Err)
					}
				}
			}
		})
	}
}

// shardEqSpecs is the shard-equivalence matrix the ISSUE names: designs ×
// cores ∈ {1, 2, 4} × workload family (compiled kernel, streaming kv,
// streaming htap), plus a fault-injected point (per-channel RNG reseeding)
// and a deterministic failure (error annotations must agree too).
func shardEqSpecs() []RunSpec {
	var specs []RunSpec
	for _, d := range []core.Design{core.D0Baseline, core.D1DiffSet, core.D2Sparse} {
		specs = append(specs, testSpec("sgemm", d))
	}
	for _, cores := range []int{2, 4} {
		s := testSpec("sobel", core.D1SameSet)
		s.Cores = cores
		specs = append(specs, s)
	}
	for _, workload := range []string{"kv", "htap"} {
		for _, cores := range []int{1, 2} {
			s := requestSpec(workload, cores)
			s.Ops = 5_000
			specs = append(specs, s)
		}
	}
	specs = append(specs, faultSpec("sgemm", core.D1DiffSet, 777))
	f := testSpec("strmm", core.D1SameSet)
	f.MaxCycles = 100
	specs = append(specs, f)
	return specs
}

// TestShardEquivalenceMatrix is the experiments-level differential
// acceptance: Shards ∈ {1, 2, 4} (plus 7, exercising empty shards) over the
// full design × cores × workload matrix must agree bit for bit with the
// Shards=1 reference — results, metrics snapshots, failure annotations.
func TestShardEquivalenceMatrix(t *testing.T) {
	err := CheckShardEquivalence(context.Background(), shardEqSpecs(), []int{1, 2, 4, 7},
		SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardEquivalenceRejectsDivergence proves the harness detects
// differences rather than rubber-stamping.
func TestShardEquivalenceRejectsDivergence(t *testing.T) {
	a := []SweepRun{{Results: &core.Results{Cycles: 1}}}
	b := []SweepRun{{Results: &core.Results{Cycles: 2}}}
	if err := diffShardRuns(a, b, 2); err == nil {
		t.Fatal("diverging cycles not detected")
	}
	b = []SweepRun{{Err: "boom"}}
	if err := diffShardRuns(a, b, 2); err == nil {
		t.Fatal("diverging error annotations not detected")
	}
	if err := diffShardRuns(a, a[:0], 2); err == nil {
		t.Fatal("length mismatch not detected")
	}
}
