package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mdacache/internal/core"
)

// SpecKey renders a RunSpec into the stable string used to identify its run
// in a checkpoint file. Two specs with identical fields share a key.
func SpecKey(spec RunSpec) string { return fmt.Sprintf("%+v", spec) }

// checkpointEntry is one finished run in the state file: either Results
// (success) or Err (the run failed and the failure is being memoised).
type checkpointEntry struct {
	Key     string        `json:"key"`
	Err     string        `json:"err,omitempty"`
	Results *core.Results `json:"results,omitempty"`
}

type checkpointFile struct {
	Version int               `json:"version"`
	Entries []checkpointEntry `json:"entries"`
}

const checkpointVersion = 1

// Checkpoint persists per-run results of a sweep to a JSON state file so an
// interrupted sweep resumes from where it stopped instead of re-simulating
// completed design points. Every Record rewrites the file atomically
// (temp file + rename), so a crash mid-write never corrupts existing state.
type Checkpoint struct {
	path    string
	entries map[string]checkpointEntry
}

// LoadCheckpoint opens (or initialises) the state file at path. A missing
// file yields an empty checkpoint; a malformed one is an error rather than
// silently discarded state.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	c := &Checkpoint{path: path, entries: make(map[string]checkpointEntry)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("experiments: checkpoint %s is corrupt: %w", path, err)
	}
	if f.Version != checkpointVersion {
		return nil, fmt.Errorf("experiments: checkpoint %s has version %d, want %d", path, f.Version, checkpointVersion)
	}
	for _, e := range f.Entries {
		c.entries[e.Key] = e
	}
	return c, nil
}

// Len reports how many finished runs the checkpoint holds.
func (c *Checkpoint) Len() int { return len(c.entries) }

// Results returns the stored results for key, if the run completed
// successfully.
func (c *Checkpoint) Results(key string) (*core.Results, bool) {
	e, ok := c.entries[key]
	if !ok || e.Err != "" {
		return nil, false
	}
	return e.Results, true
}

// Failed returns the stored failure annotation for key, if the run completed
// by failing. The simulator is deterministic, so re-running a failed design
// point reproduces the failure; delete the state file to force a retry.
func (c *Checkpoint) Failed(key string) (string, bool) {
	e, ok := c.entries[key]
	if !ok || e.Err == "" {
		return "", false
	}
	return e.Err, true
}

// Record stores one finished run (results on success, errMsg on failure) and
// rewrites the state file atomically.
func (c *Checkpoint) Record(key string, r *core.Results, errMsg string) error {
	c.entries[key] = checkpointEntry{Key: key, Err: errMsg, Results: r}
	return c.flush()
}

func (c *Checkpoint) flush() error {
	f := checkpointFile{Version: checkpointVersion}
	for _, e := range c.entries {
		f.Entries = append(f.Entries, e)
	}
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return fmt.Errorf("experiments: checkpoint: %w", err)
	}
	dir := filepath.Dir(c.path)
	tmp, err := os.CreateTemp(dir, ".mdacache-ckpt-*")
	if err != nil {
		return fmt.Errorf("experiments: checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("experiments: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("experiments: checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, c.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("experiments: checkpoint: %w", err)
	}
	return nil
}
