package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"mdacache/internal/core"
	"mdacache/internal/sim"
)

// SpecKey renders a RunSpec into the stable string used to identify its run
// in a checkpoint file. Two specs with identical fields share a key.
func SpecKey(spec RunSpec) string { return fmt.Sprintf("%+v", spec) }

// CheckpointError is the typed error for every checkpoint failure: an
// unreadable state file, corrupt or truncated JSON, a version mismatch, or a
// failed atomic rewrite. Callers distinguish "no usable checkpoint" from
// simulation failures with errors.As.
type CheckpointError struct {
	Path string // state file involved ("" when unknown)
	Op   string // "load", "decode", "version", "flush"
	Err  error  // underlying cause
}

func (e *CheckpointError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("experiments: checkpoint %s: %v", e.Op, e.Err)
	}
	return fmt.Sprintf("experiments: checkpoint %s %s: %v", e.Op, e.Path, e.Err)
}

func (e *CheckpointError) Unwrap() error { return e.Err }

func ckptErr(path, op string, err error) *CheckpointError {
	return &CheckpointError{Path: path, Op: op, Err: err}
}

// checkpointEntry is one finished run in the state file: either Results
// (success) or Err (the run failed and the failure is being memoised).
// Code classifies Err under the sim wire taxonomy; files written before the
// field existed decode with an empty code, which readers treat as unknown.
type checkpointEntry struct {
	Key     string        `json:"key"`
	Err     string        `json:"err,omitempty"`
	Code    sim.Code      `json:"code,omitempty"`
	Results *core.Results `json:"results,omitempty"`
}

type checkpointFile struct {
	Version int               `json:"version"`
	Entries []checkpointEntry `json:"entries"`
}

const checkpointVersion = 1

// Checkpoint persists per-run results of a sweep to a JSON state file so an
// interrupted sweep resumes from where it stopped instead of re-simulating
// completed design points. Every flush rewrites the file atomically
// (temp file + rename), so a crash mid-write never corrupts existing state.
//
// A Checkpoint is safe for concurrent use: parallel sweep workers record
// finished runs from many goroutines (see SweepOptions.Workers).
type Checkpoint struct {
	mu      sync.Mutex
	path    string
	entries map[string]checkpointEntry
	dirty   int // entries recorded since the last flush

	// writeFile replaces WriteFileAtomic for flushes when non-nil
	// (SweepOptions.WriteState: fenced writes in a distributed service).
	writeFile func(path string, data []byte) error
}

// LoadCheckpoint opens (or initialises) the state file at path. A missing
// file yields an empty checkpoint; a malformed one is a *CheckpointError
// rather than silently discarded state.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	c := &Checkpoint{path: path, entries: make(map[string]checkpointEntry)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, ckptErr(path, "load", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, ckptErr(path, "decode", err)
	}
	if f.Version != checkpointVersion {
		return nil, ckptErr(path, "version",
			fmt.Errorf("state file has version %d, want %d", f.Version, checkpointVersion))
	}
	for _, e := range f.Entries {
		if e.Key == "" {
			return nil, ckptErr(path, "decode", errors.New("entry with empty key"))
		}
		if e.Err == "" && e.Results == nil {
			return nil, ckptErr(path, "decode",
				fmt.Errorf("entry %q has neither results nor an error", e.Key))
		}
		c.entries[e.Key] = e
	}
	return c, nil
}

// Len reports how many finished runs the checkpoint holds.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Results returns the stored results for key, if the run completed
// successfully.
func (c *Checkpoint) Results(key string) (*core.Results, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.Err != "" {
		return nil, false
	}
	return e.Results, true
}

// Failed returns the stored failure annotation and taxonomy code for key, if
// the run completed by failing. Only deterministic failures are memoised
// (RunSweep never records wall-clock timeouts), so re-running a failed design
// point reproduces the failure; delete the state file to force a retry.
func (c *Checkpoint) Failed(key string) (msg string, code sim.Code, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.entries[key]
	if !found || e.Err == "" {
		return "", "", false
	}
	return e.Err, e.Code, true
}

// Record stores one finished run (results on success, errMsg/code on failure)
// and rewrites the state file atomically.
func (c *Checkpoint) Record(key string, r *core.Results, errMsg string, code sim.Code) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.record(key, r, errMsg, code)
	return c.flushLocked()
}

// RecordBuffered stores one finished run without flushing to disk. Pair it
// with Flush for periodic persistence: a parallel sweep records every run but
// rewrites the (growing) state file only every FlushEvery runs, keeping the
// checkpoint cost sublinear while still bounding how much a crash can lose.
func (c *Checkpoint) RecordBuffered(key string, r *core.Results, errMsg string, code sim.Code) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.record(key, r, errMsg, code)
}

// Dirty reports how many recorded runs have not yet been flushed.
func (c *Checkpoint) Dirty() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dirty
}

// Flush rewrites the state file atomically if any buffered records are
// pending. Flushing a clean checkpoint is a no-op.
func (c *Checkpoint) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dirty == 0 {
		return nil
	}
	return c.flushLocked()
}

func (c *Checkpoint) record(key string, r *core.Results, errMsg string, code sim.Code) {
	c.entries[key] = checkpointEntry{Key: key, Err: errMsg, Code: code, Results: r}
	c.dirty++
}

func (c *Checkpoint) flushLocked() error {
	f := checkpointFile{Version: checkpointVersion}
	for _, e := range c.entries {
		f.Entries = append(f.Entries, e)
	}
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return ckptErr(c.path, "flush", err)
	}
	write := c.writeFile
	if write == nil {
		write = WriteFileAtomic
	}
	if err := write(c.path, data); err != nil {
		return ckptErr(c.path, "flush", err)
	}
	c.dirty = 0
	return nil
}

// WriteFileAtomic writes data to path with full crash durability: the bytes
// land in a temp file in the same directory, are fsynced, renamed over path,
// and then the containing directory is fsynced so the rename itself survives
// a crash. A reader therefore sees either the old contents or the new, never
// a torn file — and after WriteFileAtomic returns, never the old one again,
// even if the machine dies immediately after.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	// Sync file data before the rename: rename-before-data-reaches-disk is
	// exactly the window where a crash "immediately after flush" loses the
	// checkpoint on journaled filesystems.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Filesystems
// that refuse to fsync directories (some network and FUSE mounts) report
// EINVAL/ENOTSUP; those are ignored — the rename is still atomic, durability
// is simply the best the mount offers.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if isSyncUnsupported(err) {
			return nil
		}
		return err
	}
	return nil
}

func isSyncUnsupported(err error) bool {
	return errors.Is(err, errors.ErrUnsupported) ||
		errors.Is(err, syscall.EINVAL) ||
		errors.Is(err, syscall.ENOTSUP)
}
