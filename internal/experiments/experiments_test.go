package experiments

import (
	"strings"
	"testing"

	"mdacache/internal/compiler"
	"mdacache/internal/core"
)

// fastSuite returns a suite small enough for unit tests: scale 8 (64×64
// matrices, 512 B L1) over a benchmark subset.
func fastSuite(benches ...string) *Suite {
	s := NewSuite(8, nil)
	if len(benches) > 0 {
		s.Benches = benches
	}
	return s
}

func TestRunSpecValidation(t *testing.T) {
	if _, err := Run(RunSpec{Bench: "nosuch", N: 64, Design: core.D1DiffSet, LLCBytes: core.MB, Scale: 8}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := Run(RunSpec{Bench: "sobel", N: 64, Design: core.D1DiffSet, LLCBytes: 0, Scale: 8}); err == nil {
		t.Fatal("zero LLC accepted")
	}
}

func TestHeadlineDirection(t *testing.T) {
	// The paper's central claim: MDA caches beat the prefetching baseline.
	base, err := Run(RunSpec{Bench: "sgemm", N: 64, Design: core.D0Baseline, LLCBytes: core.MB, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []core.Design{core.D1DiffSet, core.D1SameSet, core.D2Sparse} {
		r, err := Run(RunSpec{Bench: "sgemm", N: 64, Design: d, LLCBytes: core.MB, Scale: 8})
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles >= base.Cycles {
			t.Errorf("%v (%d cycles) not faster than baseline (%d)", d, r.Cycles, base.Cycles)
		}
		if r.Mem.TotalBytes() >= base.Mem.TotalBytes()/2 {
			t.Errorf("%v memory traffic %d not well below baseline %d", d, r.Mem.TotalBytes(), base.Mem.TotalBytes())
		}
	}
}

func TestColumnReadsOnlyOn2D(t *testing.T) {
	base, err := Run(RunSpec{Bench: "sgemm", N: 64, Design: core.D0Baseline, LLCBytes: core.MB, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	if base.Mem.Reads[1] != 0 {
		t.Fatal("baseline must not issue column-mode reads")
	}
	r, err := Run(RunSpec{Bench: "sgemm", N: 64, Design: core.D1DiffSet, LLCBytes: core.MB, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mem.Reads[1] == 0 {
		t.Fatal("1P2L sgemm must issue column-mode reads")
	}
}

func TestSuiteCachesRuns(t *testing.T) {
	s := fastSuite("sobel")
	spec := s.baseSpec("sobel", core.D1DiffSet, core.MB)
	spec.Scale = s.Scale
	a, err := s.run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("suite should cache identical runs")
	}
}

func TestFig10Table(t *testing.T) {
	s := fastSuite("sgemm", "sobel")
	tab, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // 2 benches × 2 input sizes
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := tab.String()
	if !strings.Contains(out, "sgemm") || !strings.Contains(out, "col-vector") {
		t.Fatalf("table rendering broken:\n%s", out)
	}
}

func TestFig12Shape(t *testing.T) {
	s := fastSuite("sobel", "htap2")
	tabs, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 4 {
		t.Fatalf("tables = %d, want 4 LLC sizes", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 3 { // 2 benches + average
			t.Fatalf("rows = %d", len(tab.Rows))
		}
	}
}

func TestFig13TwoLevel(t *testing.T) {
	s := fastSuite("sobel")
	tab, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig15ProducesSeries(t *testing.T) {
	s := fastSuite()
	rs, err := s.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("benchmarks = %d, want sgemm+ssyrk", len(rs))
	}
	for _, r := range rs {
		if len(r.Series) != 3 {
			t.Fatalf("%s: levels = %d", r.Bench, len(r.Series))
		}
		if len(r.Series[0].Y) == 0 {
			t.Fatalf("%s: empty occupancy series", r.Bench)
		}
		// A 1P2L run of these kernels must hold some column lines.
		peak := 0.0
		for _, ser := range r.Series {
			if ser.MaxY() > peak {
				peak = ser.MaxY()
			}
		}
		if peak == 0 {
			t.Fatalf("%s: no column occupancy ever recorded", r.Bench)
		}
	}
}

func TestFig11Runs(t *testing.T) {
	s := fastSuite("sobel")
	tab, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 { // bench + average
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig14Runs(t *testing.T) {
	s := fastSuite("htap2")
	tab, err := s.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// MDA designs must reduce memory traffic on a mixed workload.
	last := tab.Rows[0]
	if last[4] >= "1" { // bytes column, lexical check on "0.xxx"
		t.Fatalf("1P2L bytes ratio not < 1: %s", last[4])
	}
}

func TestFig17Runs(t *testing.T) {
	s := fastSuite("sobel")
	tab, err := s.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Header) != 6 {
		t.Fatalf("columns = %d", len(tab.Header))
	}
}

func TestAblationTables(t *testing.T) {
	s := fastSuite("sobel", "htap2")
	if tab, err := s.AblationLayout(); err != nil || len(tab.Rows) == 0 {
		t.Fatalf("layout: %v", err)
	}
	if tab, err := s.AblationDense(); err != nil || len(tab.Rows) == 0 {
		t.Fatalf("dense: %v", err)
	}
	if tab, err := s.AblationDesign3(); err != nil || len(tab.Rows) == 0 {
		t.Fatalf("design3: %v", err)
	}
}

func TestAblationTilingRuns(t *testing.T) {
	s := fastSuite()
	s.Benches = []string{"sgemm"}
	tab, err := s.AblationTiling()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // sgemm, ssyr2k, strmm (fixed subset)
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTileSizeSpecRuns(t *testing.T) {
	r, err := Run(RunSpec{Bench: "sgemm", N: 64, Design: core.D2Sparse, LLCBytes: core.MB, Scale: 8, TileSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops == 0 {
		t.Fatal("tiled run produced no ops")
	}
}

func TestPredictOrientSpecRuns(t *testing.T) {
	r, err := Run(RunSpec{Bench: "htap1", N: 64, Design: core.D1DiffSet, LLCBytes: core.MB, Scale: 8, PredictOrient: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops == 0 {
		t.Fatal("predictor run produced no ops")
	}
}

func TestFig16SlowWriteRuns(t *testing.T) {
	s := fastSuite("sobel")
	tab, err := s.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig17FastMemoryHelpsBaseline(t *testing.T) {
	slow, err := Run(RunSpec{Bench: "sobel", N: 64, Design: core.D0Baseline, LLCBytes: core.MB, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(RunSpec{Bench: "sobel", N: 64, Design: core.D0Baseline, LLCBytes: core.MB, Scale: 8, FastMem: true})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles >= slow.Cycles {
		t.Fatalf("fast memory (%d) not faster than base (%d)", fast.Cycles, slow.Cycles)
	}
}

func TestAblationLayoutChangesBehaviour(t *testing.T) {
	// The paper's §IV-C note reports ~2× slowdowns for a 1P1L hierarchy on
	// a *P2L-optimised layout; in our model the tiled layout changes the
	// baseline's locality materially but the sign depends on scale (see
	// EXPERIMENTS.md). The invariant we enforce: the layout is actually in
	// effect — behaviour must differ measurably from the linear layout.
	base, err := Run(RunSpec{Bench: "sgemm", N: 64, Design: core.D0Baseline, LLCBytes: core.MB, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := Run(RunSpec{
		Bench: "sgemm", N: 64, Design: core.D0Baseline, LLCBytes: core.MB, Scale: 8,
		LayoutOverride: compiler.LayoutTiled,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tiled.Cycles == base.Cycles && tiled.Mem.TotalBytes() == base.Mem.TotalBytes() {
		t.Error("layout override appears to have no effect")
	}
}

func TestSpecConfigScalesLLC(t *testing.T) {
	spec := RunSpec{Bench: "sgemm", N: 64, Design: core.D1DiffSet, LLCBytes: core.MB, Scale: 4}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.LLC().SizeBytes != core.MB/16 {
		t.Fatalf("LLC scaled to %d, want %d", cfg.LLC().SizeBytes, core.MB/16)
	}
	if cfg.L1.SizeBytes != 8*core.KB { // L1 scales by 1/k only
		t.Fatalf("L1 scaled to %d", cfg.L1.SizeBytes)
	}
}

func TestSlowWriteTargetsLLC(t *testing.T) {
	spec := RunSpec{Bench: "sgemm", N: 64, Design: core.D2Sparse, LLCBytes: core.MB, Scale: 4, SlowWrite: 20}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.LLC().WriteAsymmetry != 20 {
		t.Fatal("SlowWrite not applied to LLC")
	}
	if cfg.L1.WriteAsymmetry != 0 {
		t.Fatal("SlowWrite leaked to L1")
	}
}

func TestFastMemPreservesRowOnly(t *testing.T) {
	spec := RunSpec{Bench: "sgemm", N: 64, Design: core.D0Baseline, LLCBytes: core.MB, Scale: 4, FastMem: true}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Mem.RowOnly {
		t.Fatal("fast memory dropped the baseline's row-only mode")
	}
}

func TestAblationLoopOrder(t *testing.T) {
	s := fastSuite()
	tab, err := s.AblationLoopOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationMappingRuns(t *testing.T) {
	s := fastSuite()
	tab, err := s.AblationMapping()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestAblationTechRuns(t *testing.T) {
	s := fastSuite()
	tab, err := s.AblationTech()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTechSpec(t *testing.T) {
	if _, err := Run(RunSpec{Bench: "sobel", N: 64, Design: core.D1DiffSet, LLCBytes: core.MB, Scale: 8, Tech: "pcm"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(RunSpec{Bench: "sobel", N: 64, Design: core.D1DiffSet, LLCBytes: core.MB, Scale: 8, Tech: "bogus"}); err == nil {
		t.Fatal("unknown tech accepted")
	}
}

func TestReportClaims(t *testing.T) {
	s := fastSuite("sobel", "htap2")
	claims, err := s.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) < 7 {
		t.Fatalf("claims = %d", len(claims))
	}
	md := ClaimsMarkdown(claims)
	if !strings.Contains(md, "| Fig. 12 |") || !strings.Contains(md, "Measured") {
		t.Fatalf("markdown rendering broken:\n%s", md)
	}
	for _, c := range claims {
		if c.Measured == 0 {
			t.Errorf("%s %s: zero measurement", c.Figure, c.Metric)
		}
	}
}

func TestAblationReplRuns(t *testing.T) {
	s := fastSuite("sobel")
	tab, err := s.AblationRepl()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Header) != 4 {
		t.Fatalf("shape: %d rows %d cols", len(tab.Rows), len(tab.Header))
	}
}

func TestAblationSubBuffersRuns(t *testing.T) {
	s := fastSuite("htap2")
	tab, err := s.AblationSubBuffers()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}
