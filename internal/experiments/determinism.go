package experiments

import (
	"context"
	"fmt"
	"reflect"

	"mdacache/internal/obs"
)

// CheckDeterminism is the parallel-sweep determinism harness: it runs specs
// once sequentially (Workers=1) and once with the given worker count, and
// returns a descriptive error if the two []SweepRun differ anywhere — spec,
// key, results (bit for bit, including fault-injection counters), failure
// annotation or ordering. A nil return is the proof the worker pool is a
// pure wall-clock optimisation.
//
// Every machine owns its event queue and seeds its fault RNG from the spec
// (mem.Params.FaultSeed), so this must hold for any worker count; a failure
// here means shared mutable state leaked into the simulation. opt's Workers
// field is overridden; its StatePath is ignored (checkpoints would make the
// second pass resume the first).
func CheckDeterminism(ctx context.Context, specs []RunSpec, workers int, opt SweepOptions) error {
	if workers < 2 {
		return fmt.Errorf("experiments: determinism check needs workers >= 2, got %d", workers)
	}
	opt.StatePath = ""
	opt.Log = nil

	opt.Workers = 1
	seq, err := RunSweep(ctx, specs, opt)
	if err != nil {
		return fmt.Errorf("experiments: determinism check: sequential sweep: %w", err)
	}
	opt.Workers = workers
	par, err := RunSweep(ctx, specs, opt)
	if err != nil {
		return fmt.Errorf("experiments: determinism check: parallel sweep (workers=%d): %w", workers, err)
	}
	return DiffRuns(seq, par)
}

// CheckShardEquivalence is the sharded-engine differential harness: every
// spec is run once with Shards=1 (the reference) and once per requested
// shard count, and any divergence — results bit for bit (including float
// energy and the full metrics snapshot), failure annotation, error taxonomy
// — is reported with the offending spec and shard count. A nil return is
// the proof that the shard count is a pure wall-clock knob for these specs.
//
// Spec Shards/ShardQuantum/ShardParallel fields are overridden; shard
// counts <= 1 in counts are checked against the reference too (Shards=1
// twice must trivially agree, which catches nondeterminism unrelated to
// sharding). opt's StatePath and Log are cleared as in CheckDeterminism.
func CheckShardEquivalence(ctx context.Context, specs []RunSpec, counts []int, opt SweepOptions) error {
	if len(counts) == 0 {
		return fmt.Errorf("experiments: shard equivalence check needs at least one shard count")
	}
	opt.StatePath = ""
	opt.Log = nil
	if opt.Workers < 1 {
		opt.Workers = 1
	}
	withShards := func(n int) []RunSpec {
		out := make([]RunSpec, len(specs))
		for i, s := range specs {
			s.Shards = n
			s.ShardQuantum = 0
			s.ShardParallel = false
			out[i] = s
		}
		return out
	}
	ref, err := RunSweep(ctx, withShards(1), opt)
	if err != nil {
		return fmt.Errorf("experiments: shard equivalence: reference sweep (shards=1): %w", err)
	}
	for _, n := range counts {
		if n < 1 {
			return fmt.Errorf("experiments: shard equivalence: invalid shard count %d", n)
		}
		got, err := RunSweep(ctx, withShards(n), opt)
		if err != nil {
			return fmt.Errorf("experiments: shard equivalence: sweep (shards=%d): %w", n, err)
		}
		if err := diffShardRuns(ref, got, n); err != nil {
			return err
		}
	}
	return nil
}

// diffShardRuns compares a Shards=1 reference sweep against a Shards=n
// sweep. Keys differ by construction (the spec string embeds the shard
// count), so the comparison covers outcome only: error annotations and
// bit-for-bit results.
func diffShardRuns(ref, got []SweepRun, n int) error {
	if len(ref) != len(got) {
		return fmt.Errorf("experiments: shards=%d sweep has %d runs, reference has %d", n, len(got), len(ref))
	}
	for i := range ref {
		x, y := ref[i], got[i]
		switch {
		case x.Err != y.Err:
			return fmt.Errorf("experiments: shards=%d: run %d (%v): error %q vs reference %q", n, i, y.Spec, y.Err, x.Err)
		case x.ErrCode != y.ErrCode:
			return fmt.Errorf("experiments: shards=%d: run %d (%v): error code %q vs reference %q", n, i, y.Spec, y.ErrCode, x.ErrCode)
		case (x.Results == nil) != (y.Results == nil):
			return fmt.Errorf("experiments: shards=%d: run %d (%v): results presence %v vs reference %v",
				n, i, y.Spec, y.Results != nil, x.Results != nil)
		}
		if x.Results == nil {
			continue
		}
		if !reflect.DeepEqual(x.Results, y.Results) {
			return fmt.Errorf("experiments: shards=%d: run %d (%v): results diverge from Shards=1: %s",
				n, i, y.Spec, diffResults(x.Results, y.Results))
		}
	}
	return nil
}

// DiffRuns compares two sweep outcomes and returns nil when they are deeply
// equal, or an error naming the first divergence. Attempts and Resumed are
// compared too: a deterministic sweep retries and resumes identically.
func DiffRuns(a, b []SweepRun) error {
	return diffRuns(a, b, true)
}

// DiffRunResults compares what the sweeps computed — keys, failure
// annotations and bit-for-bit results — while ignoring execution provenance
// (Attempts, Resumed, Profile). This is the comparison for crash-recovery
// proofs: a sweep killed mid-flight and resumed from its checkpoint must
// produce DiffRunResults-clean output against an uninterrupted golden run,
// even though the resumed runs carry different provenance by construction.
func DiffRunResults(a, b []SweepRun) error {
	return diffRuns(a, b, false)
}

func diffRuns(a, b []SweepRun, provenance bool) error {
	if len(a) != len(b) {
		return fmt.Errorf("experiments: sweeps differ in length: %d vs %d runs", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		switch {
		case x.Key != y.Key:
			return fmt.Errorf("experiments: run %d: key %q vs %q (ordering diverged)", i, x.Key, y.Key)
		case x.Err != y.Err:
			return fmt.Errorf("experiments: run %d (%v): error %q vs %q", i, x.Spec, x.Err, y.Err)
		case x.ErrCode != y.ErrCode:
			return fmt.Errorf("experiments: run %d (%v): error code %q vs %q", i, x.Spec, x.ErrCode, y.ErrCode)
		case provenance && x.Attempts != y.Attempts:
			return fmt.Errorf("experiments: run %d (%v): attempts %d vs %d", i, x.Spec, x.Attempts, y.Attempts)
		case provenance && x.Resumed != y.Resumed:
			return fmt.Errorf("experiments: run %d (%v): resumed %v vs %v", i, x.Spec, x.Resumed, y.Resumed)
		case (x.Results == nil) != (y.Results == nil):
			return fmt.Errorf("experiments: run %d (%v): results presence %v vs %v",
				i, x.Spec, x.Results != nil, y.Results != nil)
		}
		if x.Results == nil {
			continue
		}
		if !reflect.DeepEqual(x.Results, y.Results) {
			return fmt.Errorf("experiments: run %d (%v): results diverge: %s",
				i, x.Spec, diffResults(x.Results, y.Results))
		}
	}
	return nil
}

// diffResults names the first field-level divergence between two result sets
// so a determinism failure points at the leaking subsystem instead of dumping
// two multi-KB structs. Metric snapshots get finer-grained treatment: the
// diff names the first diverging metric instead of printing two whole maps.
func diffResults(a, b interface{}) string {
	va, vb := reflect.ValueOf(a).Elem(), reflect.ValueOf(b).Elem()
	t := va.Type()
	for i := 0; i < t.NumField(); i++ {
		fa, fb := va.Field(i), vb.Field(i)
		if !fa.CanInterface() {
			continue
		}
		if reflect.DeepEqual(fa.Interface(), fb.Interface()) {
			continue
		}
		if sa, ok := fa.Interface().(obs.Snapshot); ok {
			sb := fb.Interface().(obs.Snapshot)
			return fmt.Sprintf("field %s: %s", t.Field(i).Name, obs.DiffSnapshots(sa, sb))
		}
		return fmt.Sprintf("field %s: %v vs %v", t.Field(i).Name, fa.Interface(), fb.Interface())
	}
	return "unlocated divergence"
}
