package experiments

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mdacache/internal/core"
)

// validCheckpointBytes marshals a healthy state file for the fuzz corpus.
func validCheckpointBytes(t testing.TB, entries ...checkpointEntry) []byte {
	t.Helper()
	data, err := json.MarshalIndent(checkpointFile{Version: checkpointVersion, Entries: entries}, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzLoadCheckpoint feeds arbitrary bytes through the sweep checkpoint
// loader, mirroring isa.FuzzFileTrace: corrupt, truncated or adversarial
// state files must yield a typed *CheckpointError — never a panic, and never
// a silently-empty checkpoint — while everything the loader accepts must
// satisfy the Checkpoint invariants (usable keys, results XOR error).
func FuzzLoadCheckpoint(f *testing.F) {
	ok := validCheckpointBytes(f,
		checkpointEntry{Key: "spec-a", Results: &core.Results{Cycles: 42}},
		checkpointEntry{Key: "spec-b", Err: "deadlock"},
	)
	f.Add([]byte{})
	f.Add([]byte("not json at all"))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":99,"entries":[]}`))
	f.Add([]byte(`{"version":1,"entries":[{}]}`))
	f.Add([]byte(`{"version":1,"entries":[{"key":""}]}`))
	f.Add([]byte(`{"version":1,"entries":[{"key":"k"}]}`)) // no results, no err
	f.Add([]byte(`{"version":1,"entries":{"key":"k"}}`))   // wrong shape
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))
	f.Add(ok)
	f.Add(ok[:len(ok)/2]) // mid-stream truncation
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "state.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ckpt, err := LoadCheckpoint(path)
		if err != nil {
			var cerr *CheckpointError
			if !errors.As(err, &cerr) {
				t.Fatalf("load rejection is untyped: %T %v", err, err)
			}
			if cerr.Path != path {
				t.Fatalf("error names path %q, want %q", cerr.Path, path)
			}
			return
		}
		// Accepted: every entry must be reachable through the public
		// accessors and carry either results or a failure, never both
		// absent (which a resume would treat as finished-with-nothing).
		ckpt.mu.Lock()
		keys := make([]string, 0, len(ckpt.entries))
		for k := range ckpt.entries {
			keys = append(keys, k)
		}
		ckpt.mu.Unlock()
		for _, k := range keys {
			_, isOK := ckpt.Results(k)
			_, _, isFail := ckpt.Failed(k)
			if isOK == isFail {
				t.Fatalf("entry %q accepted with results=%v failed=%v", k, isOK, isFail)
			}
		}
		// And an accepted checkpoint must round-trip through a flush.
		if err := ckpt.Record("fuzz-roundtrip", &core.Results{Cycles: 1}, "", ""); err != nil {
			t.Fatalf("flush of accepted checkpoint failed: %v", err)
		}
		re, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("re-load of flushed checkpoint failed: %v", err)
		}
		if re.Len() != len(keys)+1 {
			t.Fatalf("round-trip lost entries: %d, want %d", re.Len(), len(keys)+1)
		}
	})
}

// TestLoadCheckpointTypedErrors pins the typed-error contract outside the
// fuzzer: each corruption class yields a *CheckpointError with a telling Op.
func TestLoadCheckpointTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
		op   string
	}{
		{"garbage", "not json", "decode"},
		{"truncated", `{"version":1,"entr`, "decode"},
		{"bad version", `{"version":7,"entries":[]}`, "version"},
		{"empty key", `{"version":1,"entries":[{"key":"","err":"x"}]}`, "decode"},
		{"no payload", `{"version":1,"entries":[{"key":"k"}]}`, "decode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "state.json")
			if err := os.WriteFile(path, []byte(tc.data), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadCheckpoint(path)
			var cerr *CheckpointError
			if !errors.As(err, &cerr) {
				t.Fatalf("got %T (%v), want *CheckpointError", err, err)
			}
			if cerr.Op != tc.op {
				t.Fatalf("op = %q, want %q", cerr.Op, tc.op)
			}
		})
	}
	// A directory in place of the state file is a load error, not a panic.
	dir := t.TempDir()
	_, err := LoadCheckpoint(dir)
	var cerr *CheckpointError
	if !errors.As(err, &cerr) || cerr.Op != "load" {
		t.Fatalf("directory path: got %v, want load CheckpointError", err)
	}
}
