package experiments

import (
	"fmt"
	"testing"

	"mdacache/internal/core"
	"mdacache/internal/workloads"
)

// TestFullMatrix runs every benchmark on every design point at a tiny scale:
// a smoke screen over the whole cross-product (panics, deadlocks, zero-op
// traces, stats inconsistencies).
func TestFullMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-product smoke test")
	}
	designs := []core.Design{
		core.D0Baseline, core.D1DiffSet, core.D1SameSet,
		core.D2Sparse, core.D2Dense, core.D3AllTile,
	}
	for _, bench := range workloads.Names {
		for _, d := range designs {
			t.Run(fmt.Sprintf("%s/%v", bench, d), func(t *testing.T) {
				res, err := Run(RunSpec{
					Bench: bench, N: 32, Design: d,
					LLCBytes: core.MB, Scale: 8,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Ops == 0 || res.Cycles == 0 {
					t.Fatalf("empty run: %+v", res)
				}
				for _, lvl := range res.Levels {
					if lvl.Hits+lvl.Misses != lvl.Accesses {
						t.Errorf("%s: hits+misses != accesses", lvl.Name)
					}
				}
				if d == core.D0Baseline && res.Mem.Reads[1] > 0 {
					t.Error("baseline issued column reads")
				}
				// A trace with column preference must reach memory as
				// column traffic on every MDA design.
				if d != core.D0Baseline && bench != "htap2" && res.Mem.Reads[1] == 0 && res.Mem.TotalReads() > 0 {
					t.Logf("note: %s/%v issued no column memory reads", bench, d)
				}
			})
		}
	}
}
