package experiments

import (
	"testing"

	"mdacache/internal/core"
	"mdacache/internal/isa"
)

// TestGoldenSweepStats pins the exact key Results fields of one small kernel
// (sobel, N=16, 1 KB-class scaled LLC) on every evaluated design — a
// regression guard for the cache models, duplicate-coherence policy and
// memory scheduler, in the style of workloads.TestGoldenOpCounts. If a
// deliberate model change shifts these, re-derive them with a one-off run
// and update; an *accidental* shift is the test doing its job. The spec is
// sized so the MDA designs exercise duplicate eviction/flush (Fig. 9) and
// the baseline evicts enough to write main memory.
func TestGoldenSweepStats(t *testing.T) {
	goldenSpec := func(d core.Design) RunSpec {
		return RunSpec{Bench: "sobel", N: 16, Design: d, LLCBytes: 256 * 1024, Scale: 16}
	}
	golden := []struct {
		design core.Design
		cycles uint64 // end-to-end execution time
		ops    uint64 // trace length actually executed
		hits   uint64 // demand hits, summed over cache levels
		misses uint64 // demand misses, summed over cache levels
		dupEv  uint64 // Fig. 9 duplicate evictions, all levels
		dupFl  uint64 // Fig. 9 duplicate flushes, all levels
		rowRd  uint64 // main-memory row-line reads
		colRd  uint64 // main-memory column-line reads
		rowWr  uint64 // main-memory row-line writes
		colWr  uint64 // main-memory column-line writes
	}{
		{core.D0Baseline, 2813, 1968, 1504, 1050, 0, 0, 107, 0, 0, 0},
		{core.D1DiffSet, 3399, 1968, 714, 1382, 35, 2, 4, 60, 0, 7},
		{core.D1SameSet, 2958, 1968, 1051, 1045, 23, 1, 4, 60, 0, 0},
		{core.D2Sparse, 3399, 1968, 716, 1380, 35, 2, 2, 60, 0, 0},
	}
	for _, g := range golden {
		g := g
		t.Run(g.design.String(), func(t *testing.T) {
			r, err := Run(goldenSpec(g.design))
			if err != nil {
				t.Fatal(err)
			}
			var hits, misses, dupEv, dupFl uint64
			for _, lv := range r.Levels {
				hits += lv.Hits
				misses += lv.Misses
				dupEv += lv.DuplicateEvictions
				dupFl += lv.DuplicateFlushes
			}
			check := func(name string, got, want uint64) {
				if got != want {
					t.Errorf("%s: got %d, want %d", name, got, want)
				}
			}
			check("cycles", r.Cycles, g.cycles)
			check("ops", r.Ops, g.ops)
			check("hits", hits, g.hits)
			check("misses", misses, g.misses)
			check("duplicate evictions", dupEv, g.dupEv)
			check("duplicate flushes", dupFl, g.dupFl)
			check("mem row reads", r.Mem.Reads[isa.Row], g.rowRd)
			check("mem col reads", r.Mem.Reads[isa.Col], g.colRd)
			check("mem row writes", r.Mem.Writes[isa.Row], g.rowWr)
			check("mem col writes", r.Mem.Writes[isa.Col], g.colWr)
		})
	}
	// The pinned numbers must show the paper's structural effects, or the
	// golden table is guarding the wrong configuration: MDA designs fetch
	// true columns (column reads dominate) and exercise duplicate coherence.
	r, err := Run(goldenSpec(core.D1DiffSet))
	if err != nil {
		t.Fatal(err)
	}
	var dups uint64
	for _, lv := range r.Levels {
		dups += lv.DuplicateEvictions
	}
	if r.Mem.Reads[isa.Col] == 0 || dups == 0 {
		t.Error("golden spec no longer exercises column reads / duplicate coherence; re-size it")
	}
}
