package experiments

import (
	"fmt"
	"strings"

	"mdacache/internal/core"
	"mdacache/internal/stats"
)

// PaperClaim is one quantitative claim from the paper's evaluation together
// with the reproduction's measured counterpart.
type PaperClaim struct {
	Figure   string
	Metric   string
	Paper    string  // the paper's reported value, as stated in the text
	Measured float64 // our measurement
	Holds    bool    // whether the *shape* (direction/ordering) reproduces
	Note     string
}

// Report runs the headline comparisons and returns the paper-vs-measured
// claims table. It reuses the suite's cache, so running the figures first
// makes Report cheap.
func (s *Suite) Report() ([]PaperClaim, error) {
	var claims []PaperClaim

	// Averages across the suite at the 1 MB LLC.
	avg := func(d core.Design, f func(r, base *core.Results) float64) (float64, error) {
		var vals []float64
		for _, b := range s.Benches {
			base, err := s.run(s.baseSpec(b, core.D0Baseline, 1*core.MB))
			if err != nil {
				return 0, err
			}
			r, err := s.run(s.baseSpec(b, d, 1*core.MB))
			if err != nil {
				return 0, err
			}
			vals = append(vals, f(r, base))
		}
		return stats.Mean(vals), nil
	}

	cyc := func(r, base *core.Results) float64 { return ratio(float64(r.Cycles), float64(base.Cycles)) }

	d1, err := avg(core.D1DiffSet, cyc)
	if err != nil {
		return nil, err
	}
	claims = append(claims, PaperClaim{
		Figure: "Fig. 12", Metric: "1P2L normalized cycles (1MB LLC, avg)",
		Paper: "0.36 (64% reduction)", Measured: d1, Holds: d1 < 0.7,
		Note: "large speedup over the prefetching baseline",
	})

	ss, err := avg(core.D1SameSet, cyc)
	if err != nil {
		return nil, err
	}
	claims = append(claims, PaperClaim{
		Figure: "Fig. 12", Metric: "1P2L_SameSet normalized cycles (1MB LLC, avg)",
		Paper: "0.28 (72% reduction)", Measured: ss, Holds: ss < 0.7,
	})

	d2, err := avg(core.D2Sparse, cyc)
	if err != nil {
		return nil, err
	}
	claims = append(claims, PaperClaim{
		Figure: "Fig. 12", Metric: "2P2L normalized cycles (1MB LLC, avg)",
		Paper: "0.35 (65% reduction)", Measured: d2, Holds: d2 < 0.7,
	})

	hit, err := avg(core.D1DiffSet, func(r, base *core.Results) float64 {
		return ratio(r.L1().HitRate(), base.L1().HitRate())
	})
	if err != nil {
		return nil, err
	}
	claims = append(claims, PaperClaim{
		Figure: "Fig. 11", Metric: "1P2L L1 hit rate vs baseline (avg)",
		Paper: "1.12 (12% better)", Measured: hit, Holds: hit > 0.8,
		Note: "scalar baselines earn trivial within-line hits that vector code does not need",
	})

	acc, err := avg(core.D1DiffSet, func(r, base *core.Results) float64 {
		return ratio(float64(r.LLC().Accesses), float64(base.LLC().Accesses))
	})
	if err != nil {
		return nil, err
	}
	claims = append(claims, PaperClaim{
		Figure: "Fig. 14", Metric: "1P2L LLC accesses vs baseline (avg)",
		Paper: "0.22", Measured: acc, Holds: acc < 0.5,
	})

	bytes, err := avg(core.D1DiffSet, func(r, base *core.Results) float64 {
		return ratio(float64(r.Mem.TotalBytes()), float64(base.Mem.TotalBytes()))
	})
	if err != nil {
		return nil, err
	}
	claims = append(claims, PaperClaim{
		Figure: "Fig. 14", Metric: "1P2L LLC↔memory bytes vs baseline (avg)",
		Paper: "0.21", Measured: bytes, Holds: bytes < 0.5,
	})

	// Fig. 16: slow-write delta.
	var deltas []float64
	for _, b := range s.Benches {
		base, err := s.run(s.baseSpec(b, core.D0Baseline, 1*core.MB))
		if err != nil {
			return nil, err
		}
		sym, err := s.run(s.baseSpec(b, core.D2Sparse, 1*core.MB))
		if err != nil {
			return nil, err
		}
		slowSpec := s.baseSpec(b, core.D2Sparse, 1*core.MB)
		slowSpec.SlowWrite = 20
		slow, err := s.run(slowSpec)
		if err != nil {
			return nil, err
		}
		deltas = append(deltas, 100*(float64(slow.Cycles)-float64(sym.Cycles))/float64(base.Cycles))
	}
	d16 := stats.Mean(deltas)
	claims = append(claims, PaperClaim{
		Figure: "Fig. 16", Metric: "2P2L slow-write penalty (% of baseline cycles, avg)",
		Paper: "+0.4%", Measured: d16, Holds: d16 < 5 && d16 > -5,
		Note: "asymmetric writes barely matter — installs are off the critical path",
	})

	// Fig. 17: 1P2L (base memory) vs 1P1L-fast.
	var f17 []float64
	for _, b := range s.Benches {
		fastBase := s.baseSpec(b, core.D0Baseline, 1*core.MB)
		fastBase.FastMem = true
		fb, err := s.run(fastBase)
		if err != nil {
			return nil, err
		}
		r, err := s.run(s.baseSpec(b, core.D1DiffSet, 1*core.MB))
		if err != nil {
			return nil, err
		}
		f17 = append(f17, ratio(float64(r.Cycles), float64(fb.Cycles)))
	}
	v17 := stats.Mean(f17)
	claims = append(claims, PaperClaim{
		Figure: "Fig. 17", Metric: "1P2L (base memory) vs 1P1L on 1.6x faster memory (avg)",
		Paper: "0.59 (beats it by 41%)", Measured: v17, Holds: v17 < 1,
		Note: "MDA caching wins even if MDA memories stay slower than alternatives",
	})

	return claims, nil
}

// Markdown renders the claims as a markdown table.
func ClaimsMarkdown(claims []PaperClaim) string {
	var b strings.Builder
	b.WriteString("| Figure | Metric | Paper | Measured | Shape holds |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, c := range claims {
		holds := "yes"
		if !c.Holds {
			holds = "**no**"
		}
		note := ""
		if c.Note != "" {
			note = " — " + c.Note
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %.3f | %s%s |\n",
			c.Figure, c.Metric, c.Paper, c.Measured, holds, note)
	}
	return b.String()
}
