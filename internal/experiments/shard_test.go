package experiments

import (
	"testing"

	"mdacache/internal/isa"
)

// TestShardTraceRoundRobin pins the sharding contract: chunk k of the source
// goes to core k mod cores, each shard preserves its chunks' internal order,
// and every source op lands on exactly one shard.
func TestShardTraceRoundRobin(t *testing.T) {
	const n = shardChunkOps*5 + 17 // deliberately not chunk-aligned
	ops := make([]isa.Op, n)
	for i := range ops {
		ops[i] = isa.Op{Addr: uint64(i) * isa.WordSize}
	}
	const cores = 3
	shards := ShardTrace(isa.NewSliceTrace(ops), cores)
	if len(shards) != cores {
		t.Fatalf("got %d shards, want %d", len(shards), cores)
	}
	var got [cores][]isa.Op
	// Drain shards round-robin one op at a time — the same interleaved
	// consumption pattern RunTraces produces — to exercise the demux's
	// buffering, then drain stragglers.
	for remaining := true; remaining; {
		remaining = false
		for c := range shards {
			if op, ok := shards[c].Next(); ok {
				got[c] = append(got[c], op)
				remaining = true
			}
		}
	}
	total := 0
	for c := range got {
		total += len(got[c])
		want := uint64(c * shardChunkOps) // first op of this core's first chunk
		for i, op := range got[c] {
			if op.Addr != want*isa.WordSize {
				t.Fatalf("core %d op %d: addr %#x, want %#x", c, i, op.Addr, want*isa.WordSize)
			}
			want++
			if want%shardChunkOps == 0 { // next chunk for this core
				want += (cores - 1) * shardChunkOps
			}
		}
	}
	if total != n {
		t.Fatalf("shards delivered %d ops, want %d", total, n)
	}
}

// TestShardTraceSingleConsumerDrain checks that one slow shard can drain its
// whole share even if the others were fully consumed first (the demux
// buffers on behalf of lagging cores).
func TestShardTraceSingleConsumerDrain(t *testing.T) {
	const n = shardChunkOps * 4
	ops := make([]isa.Op, n)
	for i := range ops {
		ops[i] = isa.Op{Addr: uint64(i) * isa.WordSize}
	}
	shards := ShardTrace(isa.NewSliceTrace(ops), 2)
	// Exhaust shard 0 entirely before touching shard 1.
	count0 := 0
	for {
		if _, ok := shards[0].Next(); !ok {
			break
		}
		count0++
	}
	count1 := 0
	for {
		if _, ok := shards[1].Next(); !ok {
			break
		}
		count1++
	}
	if count0 != n/2 || count1 != n/2 {
		t.Fatalf("shards delivered %d + %d ops, want %d each", count0, count1, n/2)
	}
}

// TestShardTracePeakBufferBounded is the regression test for unbounded
// demux buffering: with one shard consuming and its sibling completely
// stalled, the fast shard must hit backpressure (isa.Blocker) instead of
// pulling the whole source into the stalled core's queue. Peak buffered ops
// per core are pinned at the high-water mark plus at most one chunk of
// overshoot.
func TestShardTracePeakBufferBounded(t *testing.T) {
	const n = shardChunkOps * 200 // ≫ shardBufOps: the old demux buffered ~n/2
	ops := make([]isa.Op, n)
	for i := range ops {
		ops[i] = isa.Op{Addr: uint64(i) * isa.WordSize}
	}
	shards := ShardTrace(isa.NewSliceTrace(ops), 2)
	fast := shards[0].(*traceShard)
	woken := 0
	fast.OnReadable(func() { woken++ })
	blocked := 0
	var got [2]int
	// Rate-skewed consumption: shard 0 drains greedily; shard 1 pops a
	// single op only when shard 0 is refused on backpressure.
	for {
		op, ok := fast.Next()
		if ok {
			if want := got[0]; opIndex(op) != shardIndex(want, 0, 2) {
				t.Fatalf("shard 0 op %d: got source index %d, want %d", got[0], opIndex(op), shardIndex(want, 0, 2))
			}
			got[0]++
			continue
		}
		if !fast.Blocked() {
			break // true EOF for shard 0
		}
		blocked++
		if _, ok := shards[1].Next(); !ok {
			t.Fatal("shard 1 refused while holding the saturated buffer")
		}
		got[1]++
	}
	for { // drain shard 1's remainder
		if _, ok := shards[1].Next(); !ok {
			break
		}
		got[1]++
	}
	if got[0] != n/2 || got[1] != n/2 {
		t.Fatalf("shards delivered %d + %d ops, want %d each", got[0], got[1], n/2)
	}
	if blocked == 0 {
		t.Fatal("fast shard never hit backpressure — the high-water mark is not enforced")
	}
	// Polling re-blocks while the saturated buffer drains its overshoot
	// band, so blocks outnumber wakes; but every saturation cycle must
	// produce a high-water crossing and hence a wake.
	if woken == 0 {
		t.Fatal("blocked shard was never woken on the high-water crossing")
	}
	if max := shardBufOps + shardChunkOps; fast.d.peak > max {
		t.Fatalf("peak buffered ops %d exceeds bound %d", fast.d.peak, max)
	}
	if fast.d.peak < shardBufOps {
		t.Fatalf("peak buffered ops %d never reached the high-water mark %d — bound untested", fast.d.peak, shardBufOps)
	}
}

// opIndex recovers the source position encoded in the test ops' addresses.
func opIndex(op isa.Op) int { return int(op.Addr / isa.WordSize) }

// shardIndex returns the source index of the i-th op of the given shard
// under round-robin chunk assignment.
func shardIndex(i, core, cores int) int {
	chunk := i / shardChunkOps
	return (chunk*cores+core)*shardChunkOps + i%shardChunkOps
}

// TestShardTraceChunkAccounting pins short-final-chunk and empty-trace
// behaviour table-driven: every op lands on the shard its chunk index
// selects, and a zero-op pull at EOF does not advance the round-robin
// cursor (the d.next skew bug).
func TestShardTraceChunkAccounting(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		cores int
	}{
		{"empty", 0, 2},
		{"one-op", 1, 3},
		{"partial-chunk", shardChunkOps - 1, 2},
		{"exact-chunk", shardChunkOps, 2},
		{"chunk-plus-one", shardChunkOps + 1, 3},
		{"exact-rotation", shardChunkOps * 3, 3},
		{"short-final-chunk", shardChunkOps*5 + 17, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ops := make([]isa.Op, tc.n)
			for i := range ops {
				ops[i] = isa.Op{Addr: uint64(i) * isa.WordSize}
			}
			shards := ShardTrace(isa.NewSliceTrace(ops), tc.cores)
			d := shards[0].(*traceShard).d
			total := 0
			for c, s := range shards {
				i := 0
				for {
					op, ok := s.Next()
					if !ok {
						break
					}
					if want := shardIndex(i, c, tc.cores); opIndex(op) != want {
						t.Fatalf("shard %d op %d: got source index %d, want %d", c, i, opIndex(op), want)
					}
					i++
				}
				total += i
			}
			if total != tc.n {
				t.Fatalf("shards delivered %d ops, want %d", total, tc.n)
			}
			// The cursor must equal the number of non-empty chunks mod
			// cores: a zero-op EOF pull consuming a turn would leave it one
			// past that.
			chunks := (tc.n + shardChunkOps - 1) / shardChunkOps
			if want := chunks % tc.cores; d.next != want {
				t.Fatalf("round-robin cursor = %d after EOF, want %d (zero-op pull advanced it)", d.next, want)
			}
		})
	}
}

// closeTrackingTrace is a Closer source that refuses Next after Close —
// modelling a generator-backed stream, where a premature Close truncates
// every op not yet pulled.
type closeTrackingTrace struct {
	isa.SliceTrace
	closed bool
	closes int
}

func (c *closeTrackingTrace) Next() (isa.Op, bool) {
	if c.closed {
		return isa.Op{}, false
	}
	return c.SliceTrace.Next()
}

func (c *closeTrackingTrace) Close() { c.closed = true; c.closes++ }

// TestShardTraceCloseKeepsSiblingsAlive pins the Close fix: closing one
// shard must not release the shared source while siblings still have
// undelivered ops (the old demux closed the source on the first shard's
// Close, silently truncating every other core's stream).
func TestShardTraceCloseKeepsSiblingsAlive(t *testing.T) {
	const n = shardChunkOps * 4
	ops := make([]isa.Op, n)
	for i := range ops {
		ops[i] = isa.Op{Addr: uint64(i) * isa.WordSize}
	}
	src := &closeTrackingTrace{SliceTrace: isa.SliceTrace{Ops: ops}}
	shards := ShardTrace(src, 2)
	// Shard 0 consumes a few ops, then abandons its stream.
	for i := 0; i < 10; i++ {
		if _, ok := shards[0].Next(); !ok {
			t.Fatalf("shard 0 refused op %d", i)
		}
	}
	shards[0].(*traceShard).Close()
	if src.closed {
		t.Fatal("source closed while shard 1 is undrained")
	}
	count1 := 0
	for {
		if _, ok := shards[1].Next(); !ok {
			break
		}
		count1++
	}
	if count1 != n/2 {
		t.Fatalf("shard 1 delivered %d ops after sibling Close, want %d", count1, n/2)
	}
	// All shards now closed or drained: the source must be released.
	shards[1].(*traceShard).Close()
	if !src.closed {
		t.Fatal("source not released after every shard closed or drained")
	}
}

// driveToPark consumes shard 0 greedily until it is refused on backpressure
// (shard 1's untouched buffer saturated at the high-water mark), returning
// how many ops shard 0 consumed. Fails the test if EOF arrives first.
func driveToPark(t *testing.T, shards []isa.TraceReader) int {
	t.Helper()
	fast := shards[0].(*traceShard)
	n := 0
	for {
		op, ok := fast.Next()
		if ok {
			if opIndex(op) != shardIndex(n, 0, 2) {
				t.Fatalf("shard 0 op %d: got source index %d, want %d", n, opIndex(op), shardIndex(n, 0, 2))
			}
			n++
			continue
		}
		if !fast.Blocked() {
			t.Fatal("shard 0 hit EOF before parking — source too small for a backpressure park")
		}
		return n
	}
}

// TestShardTraceWakeBeforeRelease pins the wake-vs-release ordering of the
// demux under simultaneous EOF and high-water-mark release: when the
// saturated shard's drain crosses the mark and the source is (or is about to
// be) exhausted, a parked sibling must be woken BEFORE the shared source is
// released, so its wake callback still observes a live demux. The wake
// callback here is synchronous and reentrant — it drains the woken shard to
// exhaustion from inside the waker's Next, driving the EOF pull and the
// release attempt within the same delivery sweep (the reentrancy the old
// single-consumer wake loop did not anticipate).
func TestShardTraceWakeBeforeRelease(t *testing.T) {
	// Large enough that shard 0 parks on shard 1's saturated buffer, small
	// enough that the source is exhausted during the reentrant drain.
	const n = shardChunkOps * 40
	ops := make([]isa.Op, n)
	for i := range ops {
		ops[i] = isa.Op{Addr: uint64(i) * isa.WordSize}
	}
	src := &closeTrackingTrace{SliceTrace: isa.SliceTrace{Ops: ops}}
	shards := ShardTrace(src, 2)
	fast := shards[0].(*traceShard)

	wakes, reparks := 0, 0
	var got [2]int
	fast.OnReadable(func() {
		wakes++
		if src.closed {
			t.Fatal("wake delivered after the source was released")
		}
		// Reentrant consumer: drain shard 0 right here, inside shard 1's
		// Next. The drain's refill pulls can re-saturate shard 1's buffer
		// (re-parking this shard — legal, the next crossing re-wakes it) or
		// hit EOF, which runs a nested wake sweep and a release attempt
		// while the outer sweep is still mid-delivery.
		for {
			op, ok := fast.Next()
			if !ok {
				if fast.Blocked() {
					reparks++
				}
				break
			}
			if opIndex(op) != shardIndex(got[0], 0, 2) {
				t.Fatalf("shard 0 op %d: got source index %d, want %d", got[0], opIndex(op), shardIndex(got[0], 0, 2))
			}
			got[0]++
		}
	})

	got[0] = driveToPark(t, shards)
	if src.closed {
		t.Fatal("source released while ops are still undelivered")
	}
	// Drain shard 1; every crossing back below the high-water mark fires the
	// wake (and with it the whole reentrant cascade above).
	for {
		op, ok := shards[1].Next()
		if !ok {
			break
		}
		if opIndex(op) != shardIndex(got[1], 1, 2) {
			t.Fatalf("shard 1 op %d: got source index %d, want %d", got[1], opIndex(op), shardIndex(got[1], 1, 2))
		}
		got[1]++
	}
	if wakes == 0 {
		t.Fatal("parked shard was never woken")
	}
	if wakes != reparks+1 {
		// Every wake but the last ends in a re-park; a mismatch means a
		// spurious wake (delivered while not parked) or a lost one.
		t.Fatalf("wakes = %d with %d re-parks, want wakes = re-parks+1", wakes, reparks)
	}
	if fast.Blocked() {
		t.Fatal("shard 0 left parked after the source drained — lost wake")
	}
	if got[0] != n/2 || got[1] != n/2 {
		t.Fatalf("shards delivered %d + %d ops, want %d each", got[0], got[1], n/2)
	}
	if !src.closed {
		t.Fatal("source not released after both shards drained")
	}
	if src.closes != 1 {
		t.Fatalf("source released %d times, want exactly 1", src.closes)
	}
}

// TestShardTraceEOFWakesParkedShard pins the EOF wake path without reentry:
// a shard parked on backpressure when the source runs dry must receive
// exactly one wake (from the high-water crossing or the EOF sweep) and then
// observe a permanent EOF — Blocked() false — rather than hanging parked
// forever on a crossing that can no longer come.
func TestShardTraceEOFWakesParkedShard(t *testing.T) {
	const n = shardChunkOps * 40
	ops := make([]isa.Op, n)
	for i := range ops {
		ops[i] = isa.Op{Addr: uint64(i) * isa.WordSize}
	}
	src := &closeTrackingTrace{SliceTrace: isa.SliceTrace{Ops: ops}}
	shards := ShardTrace(src, 2)
	fast := shards[0].(*traceShard)
	wakes := 0
	fast.OnReadable(func() { wakes++ })

	got0 := driveToPark(t, shards)
	// Drain shard 1 completely: its saturated buffer crosses the mark (one
	// wake) and its final refill pulls exhaust the source (EOF sweep — no
	// second wake, shard 0 is no longer parked after the first).
	got1 := 0
	for {
		if _, ok := shards[1].Next(); !ok {
			break
		}
		got1++
	}
	if wakes != 1 {
		t.Fatalf("parked shard woken %d times across drain + EOF, want exactly 1", wakes)
	}
	// The woken shard drains its remainder and sees a permanent EOF.
	for {
		op, ok := fast.Next()
		if !ok {
			break
		}
		if opIndex(op) != shardIndex(got0, 0, 2) {
			t.Fatalf("shard 0 op %d: got source index %d, want %d", got0, opIndex(op), shardIndex(got0, 0, 2))
		}
		got0++
	}
	if fast.Blocked() {
		t.Fatal("shard 0 reports transient backpressure at EOF — a consumer would park forever")
	}
	if got0 != n/2 || got1 != n/2 {
		t.Fatalf("shards delivered %d + %d ops, want %d each", got0, got1, n/2)
	}
	if src.closes != 1 {
		t.Fatalf("source released %d times, want exactly 1", src.closes)
	}
}

// TestShardTraceCloseIdempotent audits traceShard.Close: closing a shard
// twice (or closing an already-drained shard) must be a no-op the second
// time — no panic, no double release of the source, and no effect on
// siblings. The saturated-close variant double-closes the shard whose
// buffer holds the high-water mark while a sibling is parked on it, so the
// second Close must also not re-run the wake sweep.
func TestShardTraceCloseIdempotent(t *testing.T) {
	const n = shardChunkOps * 40
	ops := make([]isa.Op, n)
	for i := range ops {
		ops[i] = isa.Op{Addr: uint64(i) * isa.WordSize}
	}
	src := &closeTrackingTrace{SliceTrace: isa.SliceTrace{Ops: ops}}
	shards := ShardTrace(src, 2)
	fast := shards[0].(*traceShard)
	wakes := 0
	fast.OnReadable(func() { wakes++ })

	driveToPark(t, shards)
	slow := shards[1].(*traceShard)
	slow.Close() // wipes the saturated buffer: wakes the parked shard 0
	if wakes != 1 {
		t.Fatalf("closing the saturated shard woke the parked sibling %d times, want 1", wakes)
	}
	slow.Close() // idempotent: no second wake, no state change
	if wakes != 1 {
		t.Fatalf("double Close re-ran the wake sweep: %d wakes, want 1", wakes)
	}
	if src.closed {
		t.Fatal("source released while shard 0 still has undelivered ops")
	}
	// Shard 0 drains the remaining source (shard 1's chunks are dropped).
	for {
		if _, ok := fast.Next(); !ok {
			break
		}
	}
	if src.closes != 1 {
		t.Fatalf("source released %d times after drain, want exactly 1", src.closes)
	}
	fast.Close()
	fast.Close()
	if src.closes != 1 {
		t.Fatalf("double Close released the source again: %d closes, want 1", src.closes)
	}
}
