package experiments

import (
	"testing"

	"mdacache/internal/isa"
)

// TestShardTraceRoundRobin pins the sharding contract: chunk k of the source
// goes to core k mod cores, each shard preserves its chunks' internal order,
// and every source op lands on exactly one shard.
func TestShardTraceRoundRobin(t *testing.T) {
	const n = shardChunkOps*5 + 17 // deliberately not chunk-aligned
	ops := make([]isa.Op, n)
	for i := range ops {
		ops[i] = isa.Op{Addr: uint64(i) * isa.WordSize}
	}
	const cores = 3
	shards := ShardTrace(isa.NewSliceTrace(ops), cores)
	if len(shards) != cores {
		t.Fatalf("got %d shards, want %d", len(shards), cores)
	}
	var got [cores][]isa.Op
	// Drain shards round-robin one op at a time — the same interleaved
	// consumption pattern RunTraces produces — to exercise the demux's
	// buffering, then drain stragglers.
	for remaining := true; remaining; {
		remaining = false
		for c := range shards {
			if op, ok := shards[c].Next(); ok {
				got[c] = append(got[c], op)
				remaining = true
			}
		}
	}
	total := 0
	for c := range got {
		total += len(got[c])
		want := uint64(c * shardChunkOps) // first op of this core's first chunk
		for i, op := range got[c] {
			if op.Addr != want*isa.WordSize {
				t.Fatalf("core %d op %d: addr %#x, want %#x", c, i, op.Addr, want*isa.WordSize)
			}
			want++
			if want%shardChunkOps == 0 { // next chunk for this core
				want += (cores - 1) * shardChunkOps
			}
		}
	}
	if total != n {
		t.Fatalf("shards delivered %d ops, want %d", total, n)
	}
}

// TestShardTraceSingleConsumerDrain checks that one slow shard can drain its
// whole share even if the others were fully consumed first (the demux
// buffers on behalf of lagging cores).
func TestShardTraceSingleConsumerDrain(t *testing.T) {
	const n = shardChunkOps * 4
	ops := make([]isa.Op, n)
	for i := range ops {
		ops[i] = isa.Op{Addr: uint64(i) * isa.WordSize}
	}
	shards := ShardTrace(isa.NewSliceTrace(ops), 2)
	// Exhaust shard 0 entirely before touching shard 1.
	count0 := 0
	for {
		if _, ok := shards[0].Next(); !ok {
			break
		}
		count0++
	}
	count1 := 0
	for {
		if _, ok := shards[1].Next(); !ok {
			break
		}
		count1++
	}
	if count0 != n/2 || count1 != n/2 {
		t.Fatalf("shards delivered %d + %d ops, want %d each", count0, count1, n/2)
	}
}
