package experiments

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"mdacache/internal/core"
	"mdacache/internal/isa"
	"mdacache/internal/obs"
)

// obsSpec is the golden-test design point (see golden_test.go): small enough
// to run in milliseconds, sized to exercise duplicate coherence and memory
// writes on the MDA designs.
func obsSpec(d core.Design) RunSpec {
	return RunSpec{Bench: "sobel", N: 16, Design: d, LLCBytes: 256 * 1024, Scale: 16}
}

var obsDesigns = []core.Design{core.D0Baseline, core.D1DiffSet, core.D1SameSet, core.D2Sparse}

// TestMetricsOracle cross-checks the registry snapshot against the legacy
// stat structs on every design: both are views of the same storage, so every
// canonical counter must equal its LevelStats / mem.Stats / CPU field. Any
// divergence means a counter was registered against the wrong storage.
func TestMetricsOracle(t *testing.T) {
	for _, d := range obsDesigns {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			r, err := Run(obsSpec(d))
			if err != nil {
				t.Fatal(err)
			}
			m := r.Metrics
			check := func(name string, want uint64) {
				got, ok := m.Counter(name)
				if !ok {
					t.Errorf("counter %s missing from snapshot", name)
					return
				}
				if got != want {
					t.Errorf("counter %s = %d, legacy struct says %d", name, got, want)
				}
			}
			check("cpu.ops", r.Ops)
			check("cpu.vectors", r.Vectors)
			check("cpu.loads", r.Loads)
			check("cpu.stores", r.Stores)
			check("cpu.order_stalls", r.OrderStalls)
			for _, lv := range r.Levels {
				p := strings.ToLower(lv.Name) + "."
				check(p+"accesses", lv.Accesses)
				check(p+"hits", lv.Hits)
				check(p+"misses", lv.Misses)
				check(p+"hits_wrong_orient", lv.HitsWrongOrient)
				check(p+"partial_hits", lv.PartialHits)
				check(p+"fills_issued", lv.FillsIssued)
				check(p+"writebacks", lv.Writebacks)
				check(p+"writebacks_in", lv.WritebacksIn)
				check(p+"evictions", lv.Evictions)
				check(p+"bytes_from_below", lv.BytesFromBelow)
				check(p+"bytes_to_below", lv.BytesToBelow)
				check(p+"duplicate_evictions", lv.DuplicateEvictions)
				check(p+"duplicate_flushes", lv.DuplicateFlushes)
				check(p+"mshr_coalesced", lv.MSHRCoalesced)
				check(p+"mshr_stalls", lv.MSHRStalls)
				check(p+"extra_tag_probes", lv.ExtraTagProbes)
				check(p+"prefetch_issued", lv.PrefetchIssued)
				check(p+"prefetch_useful", lv.PrefetchUseful)
			}
			check("mem.reads.row", r.Mem.Reads[isa.Row])
			check("mem.reads.col", r.Mem.Reads[isa.Col])
			check("mem.writes.row", r.Mem.Writes[isa.Row])
			check("mem.writes.col", r.Mem.Writes[isa.Col])
			check("mem.buffer_hits.row", r.Mem.BufferHits[isa.Row])
			check("mem.buffer_hits.col", r.Mem.BufferHits[isa.Col])
			check("mem.activations.row", r.Mem.Activations[isa.Row])
			check("mem.activations.col", r.Mem.Activations[isa.Col])
			check("mem.bytes_read", r.Mem.BytesRead)
			check("mem.bytes_written", r.Mem.BytesWritten)
			check("mem.read_latency_sum", r.Mem.ReadLatency)
			check("mem.write_retries", r.Mem.WriteRetries)
			check("mem.write_faults", r.Mem.WriteFaults)
			if got := m.Floats["mem.energy.activation_pj"]; got != r.Mem.Energy.ActivationPJ {
				t.Errorf("mem.energy.activation_pj = %g, legacy %g", got, r.Mem.Energy.ActivationPJ)
			}

			// Registry-only metrics: the event count and latency histograms
			// must be populated whenever the machine did work.
			if ev, _ := m.Counter("sim.events"); ev == 0 {
				t.Error("sim.events is zero after a full run")
			}
			h, ok := m.Hists["mem.read_latency"]
			if !ok || h.Count != r.Mem.TotalReads() {
				t.Errorf("mem.read_latency count = %d (present=%v), want %d reads",
					h.Count, ok, r.Mem.TotalReads())
			}
			if h.Sum != r.Mem.ReadLatency {
				t.Errorf("mem.read_latency sum = %d, legacy ReadLatency %d", h.Sum, r.Mem.ReadLatency)
			}
		})
	}
}

// TestMetricsGoldenValues pins the snapshot aggregates against the golden
// table of TestGoldenSweepStats, proving the registry path reports the same
// numbers the legacy reporting pinned there.
func TestMetricsGoldenValues(t *testing.T) {
	golden := []struct {
		design       core.Design
		hits, misses uint64
	}{
		{core.D0Baseline, 1504, 1050},
		{core.D1DiffSet, 714, 1382},
		{core.D1SameSet, 1051, 1045},
		{core.D2Sparse, 716, 1380},
	}
	for _, g := range golden {
		g := g
		t.Run(g.design.String(), func(t *testing.T) {
			r, err := Run(obsSpec(g.design))
			if err != nil {
				t.Fatal(err)
			}
			if got := r.Metrics.SumCounters(".hits"); got != g.hits {
				t.Errorf("sum of *.hits = %d, golden %d", got, g.hits)
			}
			if got := r.Metrics.SumCounters(".misses"); got != g.misses {
				t.Errorf("sum of *.misses = %d, golden %d", got, g.misses)
			}
		})
	}
}

// TestTracedRunIsObservationOnly runs the same spec untraced and traced (both
// formats) and requires bit-identical Results: the tracer must be a pure
// observer. The emitted streams must also pass schema validation — the same
// check CI runs via `mdatrace -validate`.
func TestTracedRunIsObservationOnly(t *testing.T) {
	spec := obsSpec(core.D1DiffSet)
	base, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []obs.Format{obs.FormatJSONL, obs.FormatChrome} {
		var buf bytes.Buffer
		tr := obs.NewTracer(&buf, obs.TraceConfig{Format: format})
		r, err := RunInstrumented(spec, Instrument{Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if tr.Emitted() == 0 {
			t.Fatalf("format %v: traced run emitted nothing", format)
		}
		if !reflect.DeepEqual(base, r) {
			t.Errorf("format %v: tracing changed the results: %s",
				format, diffResults(base, r))
		}
		sum, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("format %v: emitted trace fails validation: %v", format, err)
		}
		if uint64(sum.Events) != tr.Emitted() {
			t.Errorf("format %v: validator saw %d events, tracer emitted %d",
				format, sum.Events, tr.Emitted())
		}
	}
}

// TestRunProfilePhases checks the profile breakdown: all four phases present,
// simulate carries the run's cycles and a non-zero event count.
func TestRunProfilePhases(t *testing.T) {
	p := &obs.RunProfile{Name: "test"}
	r, err := RunInstrumented(obsSpec(core.D1DiffSet), Instrument{Profile: p})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"workload", "compile", "build", "simulate"} {
		found := false
		for _, ph := range p.Phases {
			if ph.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("phase %q missing from profile %+v", name, p.Phases)
		}
	}
	sim := p.Phase("simulate")
	if sim.Cycles != r.Cycles {
		t.Errorf("simulate phase cycles = %d, want %d", sim.Cycles, r.Cycles)
	}
	if sim.Events == 0 {
		t.Error("simulate phase events = 0")
	}
	if p.Total() <= 0 {
		t.Error("profile total wall time is zero")
	}
}

// TestSweepProfileOption checks that profiled sweeps attach a profile per
// simulated run, keep profiles out of determinism comparisons, and that the
// metric snapshots inside Results survive DiffRuns across worker counts.
func TestSweepProfileOption(t *testing.T) {
	specs := []RunSpec{obsSpec(core.D0Baseline), obsSpec(core.D1DiffSet)}
	opt := SweepOptions{Profile: true}
	a, err := RunSweep(context.Background(), specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range a {
		if !run.OK() {
			t.Fatalf("%v failed: %s", run.Spec, run.Err)
		}
		if run.Profile == nil || len(run.Profile.Phases) == 0 {
			t.Errorf("%v: no profile attached", run.Spec)
		}
		if len(run.Results.Metrics.Counters) == 0 {
			t.Errorf("%v: results carry no metric snapshot", run.Spec)
		}
	}
	opt.Workers = 4
	b, err := RunSweep(context.Background(), specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock profiles differ between the sweeps; DiffRuns must not care.
	if err := DiffRuns(a, b); err != nil {
		t.Fatalf("profiled sweeps diverge: %v", err)
	}
}

// TestProfileTableRenders smoke-tests the profile renderer on real data.
func TestProfileTableRenders(t *testing.T) {
	p := &obs.RunProfile{Name: "x"}
	if _, err := RunInstrumented(obsSpec(core.D0Baseline), Instrument{Profile: p}); err != nil {
		t.Fatal(err)
	}
	out := ProfileTable([]*obs.RunProfile{p, nil}).String()
	for _, want := range []string{"simulate", "total", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile table missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkRunInstrumented quantifies disabled-instrumentation overhead: the
// zero-value Instrument is the default path every sweep run takes, so compare
// against BenchmarkSweep history when touching event call sites.
func BenchmarkRunInstrumented(b *testing.B) {
	spec := obsSpec(core.D1DiffSet)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunInstrumented(spec, Instrument{}); err != nil {
			b.Fatal(err)
		}
	}
}
