package experiments

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdacache/internal/core"
	"mdacache/internal/sim"
)

// TestCheckpointFlushDurable is the regression test for the fsync-after-rename
// hardening: a flushed checkpoint must be fully on disk under its final name —
// reloadable, byte-complete, and with no temp files left behind that a crash
// cleanup could confuse for state.
func TestCheckpointFlushDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	ckpt, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Record("k1", &core.Results{Cycles: 42}, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Record("k2", nil, "deadlock: stuck", sim.CodeDeadlock); err != nil {
		t.Fatal(err)
	}

	// Reload: both entries survive with payloads and codes intact.
	re, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := re.Results("k1"); !ok || r.Cycles != 42 {
		t.Fatalf("k1 lost: %+v ok=%v", r, ok)
	}
	msg, code, ok := re.Failed("k2")
	if !ok || msg != "deadlock: stuck" || code != sim.CodeDeadlock {
		t.Fatalf("k2 lost: msg=%q code=%q ok=%v", msg, code, ok)
	}

	// The atomic-write protocol must not leave temp files around.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("flush leaked temp file %q", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("state dir holds %d entries, want just the checkpoint", len(entries))
	}
}

// TestCheckpointFlushIntoMissingDir: when the containing directory vanishes
// (operator deleted the state dir mid-run), the flush fails with a typed
// *CheckpointError instead of panicking or silently dropping state.
func TestCheckpointFlushIntoMissingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "gone")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	ckpt, err := LoadCheckpoint(filepath.Join(dir, "state.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	err = ckpt.Record("k", &core.Results{Cycles: 1}, "", "")
	var cerr *CheckpointError
	if !errors.As(err, &cerr) || cerr.Op != "flush" {
		t.Fatalf("got %v, want flush *CheckpointError", err)
	}
}

// TestWriteFileAtomic pins the helper's contract: replaces existing content,
// never leaves a partial file, and cleans its temp file on failure.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "second" {
		t.Fatalf("content = %q, want %q", data, "second")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir holds %d entries after two writes, want 1", len(entries))
	}
	if err := WriteFileAtomic(filepath.Join(dir, "no-such-subdir", "x"), []byte("y")); err == nil {
		t.Fatal("write into a missing directory must fail")
	}
}
