package experiments

import (
	"strings"
	"testing"

	"mdacache/internal/stats"
)

// TestGoldenFigAverages pins the geometric-mean "Average" rows of the two
// headline paper figures at Scale 32 — the per-design speedup summaries a
// reader quotes from Fig. 12 (normalized cycles per LLC capacity) and
// Fig. 13 (cache-resident study). Individual benchmark rows may move when a
// workload is retuned, but the pinned aggregates are the paper-facing
// numbers: a reporting or model change that shifts them silently is exactly
// what this test exists to catch. If a deliberate change moves them,
// re-derive with a one-off run at Scale 32 and update the literals.
//
// The values are formatted strings straight out of stats.Table (AddRow
// renders float64 with %.3f), so the comparison also guards the rendering
// path the CLI and reports print.
func TestGoldenFigAverages(t *testing.T) {
	s := NewSuite(32, nil)

	t.Run("Fig12", func(t *testing.T) {
		tables, err := s.Fig12()
		if err != nil {
			t.Fatal(err)
		}
		// One table per LLC capacity, columns 1P2L / 1P2L_SameSet / 2P2L.
		want := [][]string{
			{"Average", "0.782", "0.727", "0.729"}, // 1.0 MB
			{"Average", "0.771", "0.721", "0.736"}, // 1.5 MB
			{"Average", "0.778", "0.727", "0.740"}, // 2.0 MB
			{"Average", "0.837", "0.783", "0.830"}, // 4.0 MB
		}
		if len(tables) != len(want) {
			t.Fatalf("Fig12 produced %d tables, want %d", len(tables), len(want))
		}
		for i, tb := range tables {
			checkAverageRow(t, tb, want[i])
		}
	})

	t.Run("Fig13", func(t *testing.T) {
		tb, err := s.Fig13()
		if err != nil {
			t.Fatal(err)
		}
		// Columns 1P2L / 2P2L on the small cache-resident input.
		checkAverageRow(t, tb, []string{"Average", "0.978", "0.930"})
	})
}

// checkAverageRow finds the Average row of tb and compares it cell-by-cell.
func checkAverageRow(t *testing.T, tb *stats.Table, want []string) {
	t.Helper()
	var got []string
	for _, r := range tb.Rows {
		if len(r) > 0 && r[0] == "Average" {
			got = r
			break
		}
	}
	if got == nil {
		t.Fatalf("%s: no Average row", tb.Title)
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("%s:\n  got  %v\n  want %v", tb.Title, got, want)
	}
	// A speedup summary that drifted to ≥1.000 across the board would mean
	// the MDA designs stopped helping — flag that shape of regression even
	// if someone updates the literals without looking.
	better := false
	for _, cell := range got[1:] {
		if cell < "1.000" {
			better = true
		}
	}
	if !better {
		t.Errorf("%s: no design beats baseline (%v) — figure no longer shows the paper's effect", tb.Title, got)
	}
}
