package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"mdacache/internal/core"
	"mdacache/internal/sim"
)

// cancelSpecs is a small sweep with enough runs to cancel at interesting
// points. All specs are healthy and fast.
func cancelSpecs() []RunSpec {
	var specs []RunSpec
	for _, bench := range []string{"sgemm", "sobel", "ssyrk"} {
		for _, d := range []core.Design{core.D0Baseline, core.D1DiffSet} {
			specs = append(specs, testSpec(bench, d))
		}
	}
	return specs
}

// TestCancelResumeIdempotent is the resume-idempotency proof for sweep
// cancellation: cancel the sweep after k finished runs (for every meaningful
// k), resume from the checkpoint, and require the final outcome to be
// bit-identical to an uninterrupted golden run. Cancellation happens inside
// the OnRun hook — i.e. between a run finishing and its checkpoint flush —
// which is exactly the "cancelled mid-checkpoint" window; the checkpoint left
// behind must always be loadable and must never contain a memoised
// cancellation artefact.
func TestCancelResumeIdempotent(t *testing.T) {
	specs := cancelSpecs()
	golden, err := RunSweep(context.Background(), specs, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for k := 1; k < len(specs); k++ {
		k := k
		t.Run(fmt.Sprintf("cancel-after-%d", k), func(t *testing.T) {
			state := filepath.Join(t.TempDir(), "sweep.json")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			finished := 0
			opt := SweepOptions{
				StatePath:  state,
				FlushEvery: 1,
				Workers:    2,
				OnRun: func(_ int, run SweepRun) {
					finished++
					if finished == k {
						cancel()
					}
				},
			}
			if _, err := RunSweep(ctx, specs, opt); err == nil {
				t.Fatal("cancelled sweep reported success")
			}

			// The interrupted checkpoint must be loadable, and must not
			// memoise any cancellation-induced (timeout) failure.
			ckpt, err := LoadCheckpoint(state)
			if err != nil {
				t.Fatalf("checkpoint left by a cancelled sweep is unloadable: %v", err)
			}
			for _, s := range specs {
				if msg, code, failed := ckpt.Failed(SpecKey(s)); failed {
					t.Fatalf("cancelled sweep memoised a failure for %v: %s (%s)", s, msg, code)
				}
			}
			if ckpt.Len() == 0 && k > 1 {
				t.Fatalf("cancel after %d runs persisted nothing", k)
			}

			// Resume: the sweep completes and matches the golden run
			// bit for bit (modulo provenance, which differs by design).
			resumed, err := RunSweep(context.Background(), specs, SweepOptions{StatePath: state})
			if err != nil {
				t.Fatalf("resume failed: %v", err)
			}
			if err := DiffRunResults(golden, resumed); err != nil {
				t.Fatalf("resumed sweep diverged from uninterrupted golden run: %v", err)
			}
			nResumed := 0
			for _, r := range resumed {
				if r.Resumed {
					nResumed++
				}
			}
			if nResumed == 0 && k > 1 {
				t.Fatal("resume re-simulated everything: checkpoint was ignored")
			}
		})
	}
}

// TestTimeoutFailureNotMemoised: a wall-clock timeout is host-speed-dependent,
// so RunSweep must not memoise it in the checkpoint — otherwise a sweep that
// was cancelled (or ran on a loaded machine) would replay the stale timeout on
// resume and diverge from an uninterrupted run forever. The injected executor
// times out a spec once; the resumed sweep must re-simulate it and succeed.
func TestTimeoutFailureNotMemoised(t *testing.T) {
	specs := []RunSpec{
		testSpec("sgemm", core.D0Baseline),
		testSpec("sobel", core.D1DiffSet),
	}
	golden, err := RunSweep(context.Background(), specs, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	state := filepath.Join(t.TempDir(), "sweep.json")
	victim := SpecKey(specs[1])
	opt := SweepOptions{
		StatePath: state,
		Run: func(ctx context.Context, spec RunSpec, ins Instrument) (*core.Results, error) {
			if SpecKey(spec) == victim {
				return nil, &sim.Error{Component: "hierarchy", Op: "run", Err: sim.ErrTimeout, Detail: "injected"}
			}
			return RunInstrumentedCtx(ctx, spec, ins)
		},
	}
	first, err := RunSweep(context.Background(), specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if first[1].OK() || first[1].ErrCode != sim.CodeTimeout {
		t.Fatalf("injected timeout not reported: %+v", first[1])
	}

	// The timeout must not be in the checkpoint...
	ckpt, err := LoadCheckpoint(state)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, failed := ckpt.Failed(victim); failed {
		t.Fatal("wall-clock timeout was memoised in the checkpoint")
	}
	// ...while the healthy spec's success is.
	if _, ok := ckpt.Results(SpecKey(specs[0])); !ok {
		t.Fatal("healthy run missing from checkpoint")
	}

	// Resume without the fault: the timed-out spec re-simulates and the
	// sweep converges to the golden outcome.
	resumed, err := RunSweep(context.Background(), specs, SweepOptions{StatePath: state})
	if err != nil {
		t.Fatal(err)
	}
	if err := DiffRunResults(golden, resumed); err != nil {
		t.Fatalf("post-timeout resume diverged: %v", err)
	}
	if !resumed[0].Resumed || resumed[1].Resumed {
		t.Fatalf("resume provenance wrong: %+v / %+v", resumed[0], resumed[1])
	}
}

// TestDeterministicFailureIsMemoised: the counterpart pin — deterministic
// failures (cycle budget) are memoised with their taxonomy code and resumed
// without re-simulation.
func TestDeterministicFailureIsMemoised(t *testing.T) {
	spec := testSpec("sgemm", core.D0Baseline)
	spec.MaxCycles = 5
	state := filepath.Join(t.TempDir(), "sweep.json")
	first, err := RunSweep(context.Background(), []RunSpec{spec}, SweepOptions{StatePath: state})
	if err != nil {
		t.Fatal(err)
	}
	if first[0].OK() || first[0].ErrCode != sim.CodeCycleLimit {
		t.Fatalf("cycle-limit failure not coded: %+v", first[0])
	}
	resumed, err := RunSweep(context.Background(), []RunSpec{spec}, SweepOptions{StatePath: state})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed[0].Resumed || resumed[0].Attempts != 0 {
		t.Fatalf("deterministic failure was re-simulated: %+v", resumed[0])
	}
	if resumed[0].ErrCode != sim.CodeCycleLimit || resumed[0].Err != first[0].Err {
		t.Fatalf("memoised failure lost fidelity: %+v vs %+v", resumed[0], first[0])
	}
}

// TestOnRunHook pins the hook contract: one call per spec (simulated and
// resumed alike), serialized, with indices covering the whole sweep.
func TestOnRunHook(t *testing.T) {
	specs := cancelSpecs()
	state := filepath.Join(t.TempDir(), "sweep.json")
	seen := make(map[int]int)
	opt := SweepOptions{
		StatePath: state,
		Workers:   4,
		OnRun:     func(i int, run SweepRun) { seen[i]++ }, // works unlocked: calls are serialized
	}
	if _, err := RunSweep(context.Background(), specs, opt); err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if seen[i] != 1 {
			t.Fatalf("OnRun called %d times for spec %d, want 1", seen[i], i)
		}
	}
	// Second pass: everything resumes, and the hook still fires per spec.
	seen = make(map[int]int)
	if _, err := RunSweep(context.Background(), specs, opt); err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if seen[i] != 1 {
			t.Fatalf("resumed OnRun called %d times for spec %d, want 1", seen[i], i)
		}
	}
}
