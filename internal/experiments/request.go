package experiments

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"mdacache/internal/core"
	"mdacache/internal/obs"
	"mdacache/internal/workloads"
)

// runRequestInstrumentedCtx executes a request-driven workload spec: no
// compiler involved — the seeded per-core client streams from
// workloads.RequestStreams feed Machine.RunTracesCtx directly, one stream
// per core. Phase accounting mirrors the kernel path with "workload"
// (stream construction) in place of "compile".
func runRequestInstrumentedCtx(ctx context.Context, spec RunSpec, ins Instrument) (res *core.Results, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("experiments: %v panicked: %v\n%s", spec, r, debug.Stack())
		}
	}()
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	cfg.Tracer = ins.Tracer

	cores := spec.Cores
	if cores < 1 {
		cores = 1
	}
	t0 := time.Now()
	streams, err := workloads.RequestStreams(workloads.ReqSpec{
		Workload:  spec.Workload,
		N:         spec.N,
		Cores:     cores,
		Clients:   spec.Clients,
		Ops:       spec.Ops,
		Zipf:      spec.Zipf,
		ReadRatio: spec.ReadRatio,
		Seed:      spec.WorkloadSeed,
		Logical2D: spec.Design.Logical2D(),
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	ins.Profile.Add(obs.ProfilePhase{Name: "workload", Wall: time.Since(t0)})

	t0 = time.Now()
	m, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}
	ins.Profile.Add(obs.ProfilePhase{Name: "build", Wall: time.Since(t0)})

	if spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.Timeout)
		defer cancel()
	}
	t0 = time.Now()
	res, err = m.RunTracesCtx(ctx, streams...)
	if err != nil {
		return nil, err
	}
	events, _ := res.Metrics.Counter("sim.events")
	ins.Profile.Add(obs.ProfilePhase{
		Name:   "simulate",
		Wall:   time.Since(t0),
		Cycles: res.Cycles,
		Events: events,
	})
	return res, nil
}
