package experiments

import "mdacache/internal/isa"

// shardChunkOps is the round-robin granularity of trace sharding: each core
// receives this many consecutive ops before the next core takes over. Chunks
// keep each core's stride patterns intact (prefetchers still train) while
// spreading the program across the cores.
const shardChunkOps = 64

// ShardTrace splits one trace into cores round-robin chunk streams for a
// multi-core machine: ops [0,chunk) go to core 0, [chunk,2·chunk) to core 1,
// and so on, wrapping. The split is a streaming demultiplexer — the source
// is pulled lazily as cores consume their shards, buffering only what rate
// divergence between cores requires, so compiled traces never need to be
// materialised.
//
// Sharding preserves each core's chunk order but not cross-core program
// order; it is the standard throughput approximation for driving shared
// hierarchies from a single-program trace.
func ShardTrace(src isa.TraceReader, cores int) []isa.TraceReader {
	d := &traceDemux{src: src, bufs: make([]opQueue, cores)}
	out := make([]isa.TraceReader, cores)
	for c := range out {
		out[c] = &traceShard{d: d, core: c}
	}
	return out
}

// traceDemux is the shared state behind one ShardTrace call. The simulation
// event loop is single-threaded, so no locking is needed.
type traceDemux struct {
	src    isa.TraceReader
	bufs   []opQueue
	next   int // core that receives the next chunk pulled from src
	done   bool
	closed bool
}

// pull moves one chunk from the source into the next core's buffer.
func (d *traceDemux) pull() {
	for i := 0; i < shardChunkOps; i++ {
		op, ok := d.src.Next()
		if !ok {
			d.done = true
			break
		}
		d.bufs[d.next].push(op)
	}
	d.next = (d.next + 1) % len(d.bufs)
}

func (d *traceDemux) close() {
	if d.closed {
		return
	}
	d.closed = true
	if c, ok := d.src.(isa.Closer); ok {
		c.Close()
	}
}

// traceShard is one core's view of the demultiplexed trace.
type traceShard struct {
	d    *traceDemux
	core int
}

// Next implements isa.TraceReader.
func (s *traceShard) Next() (isa.Op, bool) {
	d := s.d
	for d.bufs[s.core].empty() {
		if d.done {
			return isa.Op{}, false
		}
		d.pull()
	}
	return d.bufs[s.core].pop(), true
}

// Close implements isa.Closer: the machine closes every trace it was given,
// and the first shard closed releases the shared source.
func (s *traceShard) Close() { s.d.close() }

// opQueue is a FIFO of ops with amortised O(1) push/pop; the head space is
// recycled once it dominates the backing array.
type opQueue struct {
	ops  []isa.Op
	head int
}

func (q *opQueue) push(op isa.Op) { q.ops = append(q.ops, op) }

func (q *opQueue) empty() bool { return q.head >= len(q.ops) }

func (q *opQueue) pop() isa.Op {
	op := q.ops[q.head]
	q.head++
	if q.head > 1024 && q.head*2 > len(q.ops) {
		n := copy(q.ops, q.ops[q.head:])
		q.ops = q.ops[:n]
		q.head = 0
	}
	return op
}
