package experiments

import "mdacache/internal/isa"

// shardChunkOps is the round-robin granularity of trace sharding: each core
// receives this many consecutive ops before the next core takes over. Chunks
// keep each core's stride patterns intact (prefetchers still train) while
// spreading the program across the cores.
const shardChunkOps = 64

// shardBufOps is the per-core high-water mark on buffered ops. A pull whose
// destination buffer has reached the mark is refused and the asking shard
// reports transient backpressure (isa.Blocker) instead of buffering further;
// it is woken when the saturated core drains back below the mark. Because
// pulls move whole chunks, a buffer can overshoot the mark by at most one
// chunk, so peak buffering per core is bounded by shardBufOps+shardChunkOps
// no matter how far the cores' drain rates diverge.
const shardBufOps = 16 * shardChunkOps

// ShardTrace splits one trace into cores round-robin chunk streams for a
// multi-core machine: ops [0,chunk) go to core 0, [chunk,2·chunk) to core 1,
// and so on, wrapping. The split is a streaming demultiplexer — the source
// is pulled lazily as cores consume their shards, buffering at most
// shardBufOps+shardChunkOps ops per core (rate divergence beyond that shows
// up as backpressure on the fast consumers), so compiled traces never need
// to be materialised.
//
// Sharding preserves each core's chunk order but not cross-core program
// order; it is the standard throughput approximation for driving shared
// hierarchies from a single-program trace.
func ShardTrace(src isa.TraceReader, cores int) []isa.TraceReader {
	d := &traceDemux{
		src:     src,
		bufs:    make([]opQueue, cores),
		closed:  make([]bool, cores),
		waiting: make([]bool, cores),
		wakes:   make([]func(), cores),
	}
	out := make([]isa.TraceReader, cores)
	for c := range out {
		out[c] = &traceShard{d: d, core: c}
	}
	return out
}

// traceDemux is the shared state behind one ShardTrace call. The simulation
// event loop is single-threaded, so no locking is needed.
type traceDemux struct {
	src     isa.TraceReader
	bufs    []opQueue
	next    int // core that receives the next chunk pulled from src
	done    bool
	closed  []bool   // shards whose Close has been called
	waiting []bool   // shards parked on backpressure
	wakes   []func() // per-shard OnReadable callbacks

	srcClosed bool
	peak      int // max ops ever buffered in one core's queue (tests)

	// wakeq is wakeWaiters' reusable delivery buffer. Nested sweeps (a wake
	// callback re-entering the demux) append after the outer sweep's
	// segment and truncate back to it, so the buffer never allocates at
	// steady state and concurrent segments cannot clobber each other.
	wakeq []int
}

// pull moves one chunk from the source into the next core's buffer. The
// round-robin cursor advances only when the chunk was non-empty: a zero-op
// pull (source already exhausted) must not consume a core's turn, or the
// final partial chunk would be mis-assigned. Chunks destined for a closed
// shard are consumed from the source (its turn in the rotation remains) but
// dropped.
func (d *traceDemux) pull() {
	delivered := 0
	for i := 0; i < shardChunkOps; i++ {
		op, ok := d.src.Next()
		if !ok {
			d.done = true
			break
		}
		if !d.closed[d.next] {
			d.bufs[d.next].push(op)
		}
		delivered++
	}
	if n := d.bufs[d.next].len(); n > d.peak {
		d.peak = n
	}
	if delivered > 0 {
		d.next = (d.next + 1) % len(d.bufs)
	}
	if d.done {
		// EOF can strand shards parked on backpressure: their wake would
		// otherwise only fire on a high-water crossing that may never come.
		d.wakeWaiters()
		d.maybeReleaseSrc()
	}
}

// wakeWaiters unparks every shard blocked on backpressure, in ascending core
// order — wakes are scheduled through the (deterministic) event queue by the
// registered callbacks, so the order here fixes the replayed schedule.
//
// The isa.Blocker contract does not require callbacks to defer: a wake fn
// may re-enter the demux synchronously — call Next, park again, Close a
// shard, or trigger a nested wakeWaiters through an EOF pull or a high-water
// crossing. The sweep therefore snapshots its waiters and clears every flag
// before any callback runs: a nested sweep finds no stale flags to
// double-deliver, and a shard that re-parks mid-sweep keeps its fresh flag
// for the next crossing instead of being spuriously re-woken by this one
// (the old per-index clear-then-fire loop assumed a single, non-reentrant
// consumer and re-woke such shards).
func (d *traceDemux) wakeWaiters() {
	base := len(d.wakeq)
	for c := range d.waiting {
		if d.waiting[c] {
			d.waiting[c] = false
			d.wakeq = append(d.wakeq, c)
		}
	}
	for i := base; i < len(d.wakeq); i++ {
		if fn := d.wakes[d.wakeq[i]]; fn != nil {
			fn()
		}
	}
	d.wakeq = d.wakeq[:base]
}

// maybeReleaseSrc closes the shared source once no shard can need it again:
// every shard is either closed or (the source being exhausted) fully
// drained. Closing on the first shard's Close would truncate siblings that
// still have undelivered ops in the source.
func (d *traceDemux) maybeReleaseSrc() {
	if d.srcClosed {
		return
	}
	for c := range d.bufs {
		if d.closed[c] {
			continue
		}
		if !d.done || d.bufs[c].len() > 0 {
			return
		}
	}
	d.srcClosed = true
	if c, ok := d.src.(isa.Closer); ok {
		c.Close()
	}
}

// traceShard is one core's view of the demultiplexed trace.
type traceShard struct {
	d       *traceDemux
	core    int
	blocked bool // last Next refused on backpressure (isa.Blocker)
}

// Next implements isa.TraceReader.
func (s *traceShard) Next() (isa.Op, bool) {
	d := s.d
	for d.bufs[s.core].len() == 0 {
		if d.done {
			s.blocked = false
			d.maybeReleaseSrc()
			return isa.Op{}, false
		}
		if d.bufs[d.next].len() >= shardBufOps {
			// The next chunk belongs to a core already at its high-water
			// mark (necessarily another core — this shard's buffer is
			// empty). Report transient backpressure; the saturated core's
			// drain (or Close) wakes us.
			s.blocked = true
			d.waiting[s.core] = true
			return isa.Op{}, false
		}
		d.pull()
	}
	s.blocked = false
	q := &d.bufs[s.core]
	atMark := q.len() == shardBufOps
	op := q.pop()
	if atMark {
		// Crossed back below the high-water mark: pulls destined here are
		// admissible again, so unpark any backpressured siblings.
		d.wakeWaiters()
	}
	if d.done && q.len() == 0 {
		d.maybeReleaseSrc()
	}
	return op, true
}

// Blocked implements isa.Blocker.
func (s *traceShard) Blocked() bool { return s.blocked }

// OnReadable implements isa.Blocker.
func (s *traceShard) OnReadable(fn func()) { s.d.wakes[s.core] = fn }

// Close implements isa.Closer. Closing one shard abandons only that shard's
// stream: its buffered ops are discarded and future chunks for it are
// dropped, but the shared source stays open until every sibling is closed
// or drained.
func (s *traceShard) Close() {
	d := s.d
	if d.closed[s.core] {
		return
	}
	d.closed[s.core] = true
	saturated := d.bufs[s.core].len() >= shardBufOps
	d.bufs[s.core] = opQueue{}
	d.waiting[s.core] = false
	if saturated {
		d.wakeWaiters()
	}
	d.maybeReleaseSrc()
}

// opQueue is a FIFO of ops with amortised O(1) push/pop; the head space is
// recycled once it dominates the backing array.
type opQueue struct {
	ops  []isa.Op
	head int
}

func (q *opQueue) push(op isa.Op) { q.ops = append(q.ops, op) }

func (q *opQueue) len() int { return len(q.ops) - q.head }

func (q *opQueue) pop() isa.Op {
	op := q.ops[q.head]
	q.head++
	if q.head > 1024 && q.head*2 > len(q.ops) {
		n := copy(q.ops, q.ops[q.head:])
		q.ops = q.ops[:n]
		q.head = 0
	}
	return op
}
