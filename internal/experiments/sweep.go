package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"mdacache/internal/core"
	"mdacache/internal/stats"
)

// SweepOptions configures a crash-isolated sweep over many RunSpecs.
type SweepOptions struct {
	// Timeout is the per-run wall-clock budget (0 = unlimited). Specs that
	// carry their own Timeout keep it.
	Timeout time.Duration

	// MaxCycles is the per-run simulated-cycle budget (0 = unlimited). Specs
	// that carry their own MaxCycles keep it.
	MaxCycles uint64

	// Retries is how many additional attempts a failed run gets before its
	// failure is recorded. Deterministic failures (deadlock, bad spec) fail
	// every attempt; retries matter once runs carry injected faults.
	Retries int

	// StatePath names the JSON checkpoint file ("" disables checkpointing).
	// An existing file resumes the sweep: completed runs — successes and
	// failures alike — are reloaded instead of re-simulated.
	StatePath string

	// Log receives per-run progress lines (nil = silent).
	Log io.Writer
}

// SweepRun is the outcome of one design point in a sweep.
type SweepRun struct {
	Spec     RunSpec
	Key      string
	Results  *core.Results // nil when the run failed
	Err      string        // failure annotation ("" on success)
	Attempts int           // simulation attempts this process made (0 if resumed)
	Resumed  bool          // satisfied from the checkpoint file
}

// OK reports whether the run produced results.
func (r SweepRun) OK() bool { return r.Err == "" }

// RunSweep executes every spec under crash isolation: a panicking, deadlocked
// or otherwise failing design point is annotated in its SweepRun and the
// sweep moves on, so one broken configuration cannot cost the results of the
// other N-1. The returned slice always has one entry per spec, in order.
//
// The error return is reserved for infrastructure problems — a corrupt
// checkpoint file, an unwritable state path, or ctx cancelled mid-sweep (the
// completed prefix is still returned alongside ctx.Err()). Per-run failures
// never surface there.
func RunSweep(ctx context.Context, specs []RunSpec, opt SweepOptions) ([]SweepRun, error) {
	logf := func(format string, args ...interface{}) {
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, format+"\n", args...)
		}
	}
	var ckpt *Checkpoint
	if opt.StatePath != "" {
		var err error
		ckpt, err = LoadCheckpoint(opt.StatePath)
		if err != nil {
			return nil, err
		}
		if ckpt.Len() > 0 {
			logf("sweep: resuming from %s (%d finished runs)", opt.StatePath, ckpt.Len())
		}
	}

	runs := make([]SweepRun, 0, len(specs))
	for _, spec := range specs {
		if err := ctx.Err(); err != nil {
			return runs, err
		}
		if spec.Timeout == 0 {
			spec.Timeout = opt.Timeout
		}
		if spec.MaxCycles == 0 {
			spec.MaxCycles = opt.MaxCycles
		}
		run := SweepRun{Spec: spec, Key: SpecKey(spec)}
		if ckpt != nil {
			if r, ok := ckpt.Results(run.Key); ok {
				run.Results, run.Resumed = r, true
				logf("sweep: %v resumed from checkpoint", spec)
				runs = append(runs, run)
				continue
			}
			if msg, ok := ckpt.Failed(run.Key); ok {
				run.Err, run.Resumed = msg, true
				logf("sweep: %v resumed from checkpoint (failed: %s)", spec, msg)
				runs = append(runs, run)
				continue
			}
		}
		for attempt := 0; attempt <= opt.Retries; attempt++ {
			run.Attempts++
			logf("sweep: running %v (attempt %d) ...", spec, run.Attempts)
			r, err := RunCtx(ctx, spec)
			if err == nil {
				run.Results, run.Err = r, ""
				break
			}
			run.Err = err.Error()
			if ctx.Err() != nil {
				// The whole sweep was cancelled; don't burn retries on it.
				runs = append(runs, run)
				return runs, ctx.Err()
			}
		}
		if run.Err != "" {
			logf("sweep: %v FAILED after %d attempt(s): %s", spec, run.Attempts, run.Err)
		}
		if ckpt != nil {
			if err := ckpt.Record(run.Key, run.Results, run.Err); err != nil {
				return runs, err
			}
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// SweepTable renders sweep outcomes — including failures — as a table.
func SweepTable(runs []SweepRun) *stats.Table {
	t := stats.NewTable("Sweep results", "spec", "status", "cycles", "attempts")
	for _, r := range runs {
		status := "ok"
		if r.Resumed {
			status = "resumed"
		}
		cycles := interface{}("-")
		if r.OK() {
			cycles = r.Results.Cycles
		} else {
			status = "FAILED: " + r.Err
		}
		t.AddRow(r.Spec.String(), status, cycles, r.Attempts)
	}
	return t
}
