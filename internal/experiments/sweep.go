package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"mdacache/internal/core"
	"mdacache/internal/obs"
	"mdacache/internal/sim"
	"mdacache/internal/stats"
)

// SweepOptions configures a crash-isolated sweep over many RunSpecs.
type SweepOptions struct {
	// Timeout is the per-run wall-clock budget (0 = unlimited). Specs that
	// carry their own Timeout keep it.
	Timeout time.Duration

	// MaxCycles is the per-run simulated-cycle budget (0 = unlimited). Specs
	// that carry their own MaxCycles keep it.
	MaxCycles uint64

	// Retries is how many additional attempts a failed run gets before its
	// failure is recorded. Deterministic failures (deadlock, bad spec) fail
	// every attempt; retries matter once runs carry injected faults.
	Retries int

	// Workers bounds how many design points simulate concurrently.
	// 0 uses runtime.GOMAXPROCS(0); 1 reproduces the sequential behaviour.
	// Simulations are deterministic per spec (every machine owns its event
	// queue and fault RNG, seeded from the spec), so the returned slice is
	// bit-identical for any worker count — only wall-clock time changes.
	Workers int

	// StatePath names the JSON checkpoint file ("" disables checkpointing).
	// An existing file resumes the sweep: completed runs — successes and
	// failures alike — are reloaded instead of re-simulated. The checkpoint
	// is safe under concurrent workers: records are mutex-guarded and every
	// flush rewrites the file atomically, so a sweep killed mid-flight
	// resumes cleanly.
	StatePath string

	// FlushEvery is how many finished runs may accumulate between checkpoint
	// flushes (<=1 flushes after every run). Larger values amortise the
	// atomic file rewrite across fast runs; a crash loses at most
	// FlushEvery-1 finished runs. The checkpoint is always flushed before
	// RunSweep returns.
	FlushEvery int

	// Log receives per-run progress lines (nil = silent). Lines from
	// concurrent workers are serialized through a single goroutine, so they
	// never interleave mid-line regardless of Workers.
	Log io.Writer

	// Profile attaches a wall/sim-time phase breakdown to every simulated
	// run (SweepRun.Profile). Resumed runs carry no profile — nothing was
	// simulated. Profiles are wall-clock measurements and never part of
	// Results, so they cannot perturb determinism checks or checkpoints.
	Profile bool

	// FlushRetries is how many times a failed checkpoint flush is retried
	// (with exponential backoff, starting at FlushBackoff) before it is
	// declared an infrastructure failure and aborts the sweep. Flush
	// failures are frequently transient — ENOSPC races, NFS hiccups, AV
	// scanners holding the file — and a long-running service should not
	// lose a job to one. 0 keeps the historical fail-fast behaviour.
	FlushRetries int

	// FlushBackoff is the initial retry delay for FlushRetries (default
	// 50ms, doubling per attempt).
	FlushBackoff time.Duration

	// OnRun, when non-nil, observes every finished run — simulated,
	// failed, and checkpoint-resumed alike — as it completes. index is the
	// run's position in specs. Calls are serialized (never concurrent) but
	// arrive in completion order, not spec order. The hook is how a
	// service streams per-run progress; it must not block for long, since
	// it briefly holds up the worker that finished the run.
	OnRun func(index int, run SweepRun)

	// Run, when non-nil, replaces RunInstrumentedCtx as the executor of
	// each attempt. Services layer cross-job caches and single-flight
	// sharing here; the checkpoint, retry and budget plumbing all stay in
	// RunSweep. The function must be safe for concurrent calls and
	// deterministic per spec.
	Run func(ctx context.Context, spec RunSpec, ins Instrument) (*core.Results, error)

	// WriteState, when non-nil, replaces WriteFileAtomic for every
	// checkpoint flush. A distributed service uses it to fence writes: the
	// hook may refuse the write (returning an error wrapping
	// ErrStateConflict) when the caller no longer owns the state file — a
	// slow old owner must not clobber the checkpoint of a job another node
	// has stolen. ErrStateConflict failures abort the sweep immediately
	// (they are permanent: no FlushRetries are spent on them).
	WriteState func(path string, data []byte) error
}

// ErrStateConflict marks a WriteState refusal as permanent: the sweep's
// ownership of its state file was revoked (another node holds a newer lease
// epoch), so retrying the flush is pointless and the sweep aborts with the
// completed prefix intact — on the node that now owns the checkpoint.
var ErrStateConflict = errors.New("experiments: checkpoint write conflict (state ownership revoked)")

// workerCount resolves the effective pool size for n specs.
func (opt SweepOptions) workerCount(n int) int {
	w := opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SweepRun is the outcome of one design point in a sweep.
type SweepRun struct {
	Spec     RunSpec
	Key      string
	Results  *core.Results // nil when the run failed
	Err      string        // failure annotation ("" on success)
	ErrCode  sim.Code      `json:",omitempty"` // taxonomy code for Err ("" on success)
	Attempts int           // simulation attempts this process made (0 if resumed)
	Resumed  bool          // satisfied from the checkpoint file

	// Profile is the run's phase breakdown when SweepOptions.Profile was
	// set (nil otherwise, and for resumed runs). Excluded from the
	// checkpoint and from DiffRuns: wall-clock time is not deterministic.
	Profile *obs.RunProfile `json:"-"`
}

// OK reports whether the run produced results.
func (r SweepRun) OK() bool { return r.Err == "" }

// sweepLogger serializes progress lines from concurrent workers onto one
// io.Writer. A nil sweepLogger is silent.
type sweepLogger struct {
	lines chan string
	done  chan struct{}
}

func newSweepLogger(w io.Writer) *sweepLogger {
	if w == nil {
		return nil
	}
	l := &sweepLogger{lines: make(chan string, 64), done: make(chan struct{})}
	go func() {
		defer close(l.done)
		for line := range l.lines {
			fmt.Fprintln(w, line)
		}
	}()
	return l
}

func (l *sweepLogger) logf(format string, args ...interface{}) {
	if l == nil {
		return
	}
	l.lines <- fmt.Sprintf(format, args...)
}

// close drains the queue and stops the goroutine; no logf may follow.
func (l *sweepLogger) close() {
	if l == nil {
		return
	}
	close(l.lines)
	<-l.done
}

// RunSweep executes every spec under crash isolation: a panicking, deadlocked
// or otherwise failing design point is annotated in its SweepRun and the
// sweep moves on, so one broken configuration cannot cost the results of the
// other N-1. Design points fan out across SweepOptions.Workers goroutines;
// the returned slice always has one entry per spec, in spec order, regardless
// of completion order, and is bit-identical for any worker count.
//
// The error return is reserved for infrastructure problems — a corrupt
// checkpoint file, an unwritable state path, or ctx cancelled mid-sweep (the
// completed prefix is still returned alongside ctx.Err()). Per-run failures
// never surface there.
func RunSweep(ctx context.Context, specs []RunSpec, opt SweepOptions) ([]SweepRun, error) {
	log := newSweepLogger(opt.Log)
	defer log.close()

	var ckpt *Checkpoint
	if opt.StatePath != "" {
		var err error
		ckpt, err = LoadCheckpoint(opt.StatePath)
		if err != nil {
			return nil, err
		}
		ckpt.writeFile = opt.WriteState
		if ckpt.Len() > 0 {
			log.logf("sweep: resuming from %s (%d finished runs)", opt.StatePath, ckpt.Len())
		}
	}
	flushEvery := opt.FlushEvery
	if flushEvery < 1 {
		flushEvery = 1
	}

	// emit serializes OnRun calls from concurrent workers.
	var onRunMu sync.Mutex
	emit := func(i int, run SweepRun) {
		if opt.OnRun == nil {
			return
		}
		onRunMu.Lock()
		opt.OnRun(i, run)
		onRunMu.Unlock()
	}
	runFn := opt.Run
	if runFn == nil {
		runFn = RunInstrumentedCtx
	}

	runs := make([]SweepRun, len(specs))
	done := make([]bool, len(specs))
	var pending []int // indices that still need simulation, in spec order
	for i, spec := range specs {
		if spec.Timeout == 0 {
			spec.Timeout = opt.Timeout
		}
		if spec.MaxCycles == 0 {
			spec.MaxCycles = opt.MaxCycles
		}
		run := SweepRun{Spec: spec, Key: SpecKey(spec)}
		if ckpt != nil {
			if r, ok := ckpt.Results(run.Key); ok {
				run.Results, run.Resumed = r, true
				log.logf("sweep: %v resumed from checkpoint", spec)
				runs[i], done[i] = run, true
				emit(i, run)
				continue
			}
			if msg, code, ok := ckpt.Failed(run.Key); ok {
				run.Err, run.ErrCode, run.Resumed = msg, code, true
				log.logf("sweep: %v resumed from checkpoint (failed: %s)", spec, msg)
				runs[i], done[i] = run, true
				emit(i, run)
				continue
			}
		}
		runs[i] = run
		pending = append(pending, i)
	}

	// sctx stops the pool early on an infrastructure failure; per-run
	// failures never cancel it.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		errMu    sync.Mutex
		infraErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if infraErr == nil {
			infraErr = err
		}
		errMu.Unlock()
		cancel()
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := opt.workerCount(len(pending)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				run := runs[i]
				spec := run.Spec
				var lastErr error
				for attempt := 0; attempt <= opt.Retries; attempt++ {
					run.Attempts++
					log.logf("sweep: running %v (attempt %d) ...", spec, run.Attempts)
					var ins Instrument
					if opt.Profile {
						// Fresh profile per attempt so a retried run
						// reports only the attempt that produced results.
						ins.Profile = &obs.RunProfile{Name: spec.String()}
					}
					r, err := runFn(sctx, spec, ins)
					if err == nil {
						run.Results, run.Err, run.ErrCode, lastErr = r, "", "", nil
						run.Profile = ins.Profile
						break
					}
					run.Err, run.ErrCode, lastErr = err.Error(), sim.CodeOf(err), err
					if sctx.Err() != nil {
						// The whole sweep was cancelled; don't burn
						// retries on it.
						break
					}
				}
				if run.Err != "" {
					log.logf("sweep: %v FAILED after %d attempt(s): %s", spec, run.Attempts, run.Err)
				}
				// Memoise the outcome — except wall-clock timeouts, which
				// depend on host speed, not the simulation: replaying a
				// stale timeout after a cancel/resume would make the
				// resumed sweep diverge from an uninterrupted one. A
				// timed-out run stays unrecorded so resume re-simulates it.
				if ckpt != nil && sctx.Err() == nil && !errors.Is(lastErr, sim.ErrTimeout) {
					ckpt.RecordBuffered(run.Key, run.Results, run.Err, run.ErrCode)
					if ckpt.Dirty() >= flushEvery {
						if err := flushWithRetry(ckpt, opt, sctx); err != nil {
							setErr(err)
						}
					}
				}
				runs[i], done[i] = run, true
				emit(i, run)
				if sctx.Err() != nil {
					return
				}
			}
		}()
	}
feed:
	for _, i := range pending {
		select {
		case work <- i:
		case <-sctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()

	if ckpt != nil {
		// The final flush runs even when the sweep was cancelled: whatever
		// completed before the cancel must land on disk so the job resumes
		// instead of restarting. ctx is deliberately not consulted here.
		if err := flushWithRetry(ckpt, opt, context.Background()); err != nil {
			setErr(err)
		}
	}
	errMu.Lock()
	err := infraErr
	errMu.Unlock()
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		// Return the contiguous completed prefix, mirroring the sequential
		// semantics: everything before the first unfinished spec.
		n := 0
		for n < len(done) && done[n] {
			n++
		}
		return runs[:n], err
	}
	return runs, nil
}

// flushWithRetry flushes the checkpoint, retrying failed flushes with
// exponential backoff per SweepOptions.FlushRetries/FlushBackoff. ctx bounds
// the waiting: a cancelled sweep stops retrying immediately so cancellation
// stays prompt (RunSweep's final flush passes an independent context so the
// completed prefix still lands on disk after a cancel).
func flushWithRetry(ckpt *Checkpoint, opt SweepOptions, ctx context.Context) error {
	backoff := opt.FlushBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = ckpt.Flush()
		if err == nil || attempt >= opt.FlushRetries || errors.Is(err, ErrStateConflict) {
			return err
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// SweepTable renders sweep outcomes — including failures — as a table.
func SweepTable(runs []SweepRun) *stats.Table {
	t := stats.NewTable("Sweep results", "spec", "status", "cycles", "attempts")
	for _, r := range runs {
		status := "ok"
		if r.Resumed {
			status = "resumed"
		}
		cycles := interface{}("-")
		if r.OK() {
			cycles = r.Results.Cycles
		} else {
			status = "FAILED: " + r.Err
		}
		t.AddRow(r.Spec.String(), status, cycles, r.Attempts)
	}
	return t
}
